"""Crash-tolerant process sharding for deterministic work queues.

:class:`ShardSupervisor` replaces a fire-and-forget process pool for
workloads made of independent, deterministically-ordered shards (chunk
index -> payload).  Unlike ``ProcessPoolExecutor`` it

* detects **dead** workers (the process exits mid-shard: segfault,
  OOM-kill, SIGKILL) and **hung** workers (a per-shard deadline,
  measured from dispatch to result),
* requeues the lost shard with capped exponential backoff and respawns
  a replacement worker, counting every requeue in the metrics registry
  as ``campaign_shard_retries_total{reason=crash|timeout|error,attempt}``
  (the ``attempt`` label makes the chosen backoff deterministic:
  ``min(cap, base * 2**(attempt-1))``, recorded in the
  ``supervisor_backoff_seconds{reason}`` gauge),
* records worker heartbeats (every control message) in the registry as
  ``supervisor_heartbeats_total{worker}``,
* owns an idempotent :meth:`shutdown` that terminates every worker --
  also on ``KeyboardInterrupt``, so Ctrl-C never leaves orphans.

Each worker process runs ``worker_init(*init_args)`` once to build its
context (e.g. a campaign harness with its golden run) and then serves
``run = worker_init(...); result = run(payload)`` per shard over a
dedicated pipe.  Results are keyed by shard index, so completion order
never affects the merged output -- determinism is the caller's merge
``sorted(results)`` plus deterministic shard payloads.

A shard that keeps failing past ``max_retries`` raises
:class:`ShardFailure` naming the shard and its last error; transient
losses (a killed worker, one flaky run) are absorbed silently apart
from the retry counter.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from dataclasses import dataclass
from multiprocessing.connection import wait as _conn_wait
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.resilience.clock import MONOTONIC, Clock

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.metrics import MetricsRegistry

__all__ = ["ShardFailure", "ShardSupervisor", "SupervisorConfig", "backoff_for"]


def backoff_for(attempt: int, base: float, cap: float) -> float:
    """The capped exponential backoff before retry number ``attempt``.

    ``attempt`` counts from 1 (the first retry); the schedule is
    ``min(cap, base * 2**(attempt-1))`` -- shared by the shard
    supervisor's requeue path and the fabric's reconnect machinery so
    both honour the same cap and both are testable on a fake clock.
    """
    if attempt < 1:
        raise ValueError("attempt counts from 1")
    # 2**(attempt-1) overflows no float for any sane retry budget, but
    # short-circuit once the cap is reached so huge attempt numbers
    # cost nothing.
    if base >= cap:
        return cap
    exponent = min(attempt - 1, 64)
    return min(cap, base * (2 ** exponent))


@dataclass(frozen=True)
class SupervisorConfig:
    """Sharding and fault-handling knobs."""

    jobs: int = 2
    #: per-shard deadline in seconds, measured from dispatch to result;
    #: None disables hang detection (workers are still reaped on death).
    shard_timeout: Optional[float] = None
    #: how many times one shard may be requeued before the run fails.
    max_retries: int = 2
    #: exponential backoff before a retried shard becomes eligible
    #: again: ``min(cap, base * 2**(attempt-1))`` seconds.
    backoff_base: float = 0.25
    backoff_cap: float = 8.0
    #: event-loop poll granularity (deadline checks, reaping) in seconds.
    poll_interval: float = 0.05
    #: grace period between SIGTERM and SIGKILL at shutdown.
    grace: float = 2.0


class ShardFailure(RuntimeError):
    """One shard exhausted its retries."""

    def __init__(self, index: int, attempts: int, reason: str) -> None:
        super().__init__(
            f"shard {index} failed after {attempts} attempts: {reason}"
        )
        self.index = index
        self.attempts = attempts
        self.reason = reason


class _Task:
    __slots__ = ("index", "payload", "attempts", "eligible_at", "last_error")

    def __init__(self, index: int, payload: object) -> None:
        self.index = index
        self.payload = payload
        self.attempts = 0
        self.eligible_at = 0.0
        self.last_error = ""


class _Worker:
    __slots__ = ("slot", "process", "conn", "task", "dispatched_at")

    def __init__(self, slot: int, process: mp.Process, conn) -> None:
        self.slot = slot
        self.process = process
        self.conn = conn
        self.task: Optional[_Task] = None
        self.dispatched_at = 0.0


def _worker_loop(conn, worker_init, init_args) -> None:
    """Worker-process main: build the context once, then serve shards."""
    try:
        run = worker_init(*init_args)
        conn.send(("ready", -1, None))
        while True:
            message = conn.recv()
            if message is None:
                break
            index, payload = message
            conn.send(("start", index, None))
            try:
                result = run(payload)
            except BaseException as exc:  # report, keep serving
                conn.send(("error", index, f"{type(exc).__name__}: {exc}"))
            else:
                conn.send(("result", index, result))
    except (EOFError, OSError, KeyboardInterrupt):
        pass  # supervisor went away or is tearing us down
    finally:
        try:
            conn.close()
        except OSError:
            pass


class ShardSupervisor:
    """Run ``(index, payload)`` shards across supervised worker processes."""

    def __init__(
        self,
        worker_init: Callable[..., Callable[[object], object]],
        init_args: Tuple[object, ...],
        tasks: Sequence[Tuple[int, object]],
        config: Optional[SupervisorConfig] = None,
        metrics: Optional["MetricsRegistry"] = None,
        on_result: Optional[Callable[[int, object], None]] = None,
        clock: Clock = MONOTONIC,
    ) -> None:
        self.config = config or SupervisorConfig()
        if self.config.jobs < 1:
            raise ValueError("jobs must be >= 1")
        self._clock = clock
        self._worker_init = worker_init
        self._init_args = tuple(init_args)
        self._pending: List[_Task] = [_Task(i, p) for i, p in tasks]
        self._total = len(self._pending)
        self._metrics = metrics
        self._on_result = on_result
        self._results: Dict[int, object] = {}
        self._workers: List[_Worker] = []
        self._next_slot = 0
        self._closed = False

    # -- bookkeeping ---------------------------------------------------
    @property
    def results(self) -> Dict[int, object]:
        return dict(self._results)

    def _heartbeat(self, worker: _Worker) -> None:
        if self._metrics is not None:
            self._metrics.counter(
                "supervisor_heartbeats_total", worker=str(worker.slot)
            ).inc()

    def _count_retry(self, reason: str, attempt: int, backoff: float) -> None:
        if self._metrics is not None:
            self._metrics.counter(
                "campaign_shard_retries_total",
                reason=reason, attempt=attempt,
            ).inc()
            self._metrics.gauge(
                "supervisor_backoff_seconds", reason=reason
            ).set(backoff)

    def _requeue(self, task: _Task, reason: str, detail: str) -> None:
        task.attempts += 1
        task.last_error = detail
        if task.attempts > self.config.max_retries:
            raise ShardFailure(task.index, task.attempts, detail)
        backoff = backoff_for(
            task.attempts, self.config.backoff_base, self.config.backoff_cap
        )
        task.eligible_at = self._clock() + backoff
        self._count_retry(reason, task.attempts, backoff)
        self._pending.append(task)

    # -- worker lifecycle ----------------------------------------------
    def _spawn_worker(self) -> None:
        parent_conn, child_conn = mp.Pipe()
        process = mp.Process(
            target=_worker_loop,
            args=(child_conn, self._worker_init, self._init_args),
            daemon=True,
        )
        process.start()
        child_conn.close()
        self._workers.append(_Worker(self._next_slot, process, parent_conn))
        self._next_slot += 1

    def _kill_worker(self, worker: _Worker) -> None:
        try:
            worker.conn.close()
        except OSError:
            pass
        if worker.process.is_alive():
            worker.process.terminate()
            worker.process.join(self.config.grace)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join()
        self._workers.remove(worker)

    def shutdown(self) -> None:
        """Terminate every worker (idempotent; used on Ctrl-C too)."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            try:
                worker.conn.send(None)
            except (OSError, ValueError):
                pass
        for worker in list(self._workers):
            self._kill_worker(worker)

    # -- event loop ----------------------------------------------------
    def _assign(self) -> None:
        now = self._clock()
        idle = [w for w in self._workers if w.task is None]
        eligible = sorted(
            (t for t in self._pending if t.eligible_at <= now),
            key=lambda t: t.index,
        )
        for worker, task in zip(idle, eligible):
            try:
                worker.conn.send((task.index, task.payload))
            except (OSError, ValueError):
                continue  # dying worker; the reaper handles it
            self._pending.remove(task)
            worker.task = task
            worker.dispatched_at = now

    def _reap(self) -> None:
        for worker in list(self._workers):
            if worker.process.is_alive():
                continue
            task = worker.task
            self._kill_worker(worker)
            if task is not None:
                self._requeue(
                    task, "crash",
                    f"worker exited with code {worker.process.exitcode} "
                    f"while running shard {task.index}",
                )

    def _check_deadlines(self) -> None:
        timeout = self.config.shard_timeout
        if timeout is None:
            return
        now = self._clock()
        for worker in list(self._workers):
            task = worker.task
            if task is None or now - worker.dispatched_at <= timeout:
                continue
            self._kill_worker(worker)
            self._requeue(
                task, "timeout",
                f"shard {task.index} exceeded the {timeout:.1f}s deadline",
            )

    def _receive(self, worker: _Worker) -> None:
        try:
            kind, index, payload = worker.conn.recv()
        except (EOFError, OSError):
            # Pipe broke: the process died (or is dying); reap it now so
            # its in-flight shard is requeued promptly.
            task = worker.task
            self._kill_worker(worker)
            if task is not None:
                self._requeue(task, "crash", "worker pipe closed mid-shard")
            return
        self._heartbeat(worker)
        if kind == "start":
            worker.dispatched_at = self._clock()
        elif kind == "result":
            worker.task = None
            if index not in self._results:
                self._results[index] = payload
                if self._on_result is not None:
                    self._on_result(index, payload)
        elif kind == "error":
            task = worker.task
            worker.task = None
            if task is not None:
                self._requeue(task, "error", str(payload))
        # "ready" is heartbeat-only

    def _poll(self) -> None:
        conns = {w.conn: w for w in self._workers}
        if not conns:
            time.sleep(self.config.poll_interval)
            return
        for conn in _conn_wait(
            list(conns), timeout=self.config.poll_interval
        ):
            worker = conns[conn]
            if worker in self._workers:
                self._receive(worker)

    def run(self) -> Dict[int, object]:
        """Process every shard; returns ``{index: result}``.

        Always tears the workers down on the way out -- normal
        completion, :class:`ShardFailure` and ``KeyboardInterrupt``
        alike.
        """
        if self._closed:
            raise RuntimeError("supervisor already shut down")
        try:
            while len(self._results) < self._total:
                self._reap()
                self._check_deadlines()
                outstanding = len(self._pending) + sum(
                    1 for w in self._workers if w.task is not None
                )
                while (
                    len(self._workers) < min(self.config.jobs, outstanding)
                ):
                    self._spawn_worker()
                self._assign()
                self._poll()
        finally:
            self.shutdown()
        return dict(self._results)
