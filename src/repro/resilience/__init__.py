"""repro.resilience -- hardened execution for long-running workloads.

Four capabilities, threaded through the campaign, sweep and
model-checking drivers:

* **checkpoint/resume** (:mod:`~repro.resilience.checkpoint`) --
  atomic, fingerprint-validated on-disk stores; a resumed run emits the
  byte-identical report of an uninterrupted one;
* **crash-tolerant sharding** (:mod:`~repro.resilience.supervisor`) --
  worker processes with per-shard deadlines, death detection and
  capped-backoff requeues;
* **stall watchdogs** (:mod:`~repro.resilience.watchdog`) -- no-progress
  windows over the behavioural and gate-level simulators, with a
  structured :class:`StallDiagnosis` naming the asserted-Stop cycle;
* **graceful degradation** (:mod:`~repro.resilience.degrade`) -- batch
  lane faults quarantine onto the scalar engine instead of sinking the
  campaign.

See the "Resilience" section of DESIGN.md for formats and criteria.
"""

from repro.resilience.checkpoint import (
    CheckpointError,
    CheckpointMismatch,
    CheckpointStore,
    atomic_write_json,
)
from repro.resilience.clock import MONOTONIC, Clock, FakeClock
from repro.resilience.degrade import (
    DegradingCampaignHarness,
    LaneFaultError,
    verify_degradation,
)
from repro.resilience.supervisor import (
    ShardFailure,
    ShardSupervisor,
    SupervisorConfig,
    backoff_for,
)
from repro.resilience.watchdog import (
    BatchStallWatchdog,
    NetworkStallWatchdog,
    RtlStallWatchdog,
    StallDiagnosis,
    StallError,
)

__all__ = [
    "BatchStallWatchdog",
    "CheckpointError",
    "CheckpointMismatch",
    "CheckpointStore",
    "Clock",
    "DegradingCampaignHarness",
    "FakeClock",
    "LaneFaultError",
    "MONOTONIC",
    "NetworkStallWatchdog",
    "RtlStallWatchdog",
    "ShardFailure",
    "ShardSupervisor",
    "StallDiagnosis",
    "StallError",
    "SupervisorConfig",
    "atomic_write_json",
    "backoff_for",
    "verify_degradation",
]
