"""Graceful degradation: quarantine faulted batch lanes onto the scalar engine.

The 64-lane :class:`~repro.rtl.batchsim.BatchSimulator` is the fast
path of a fault campaign, but it is also the most fragile: a netlist
whose faulted cone forms a combinational cycle cannot be compiled at
all, a buggy observer can corrupt the live plane arrays, and a monitor
bank can disagree with the scalar reference.  None of those should sink
a multi-thousand-fault campaign.

:class:`DegradingCampaignHarness` wraps the batch harness in a
degradation ladder:

1. **batch** -- the normal lane-parallel run;
2. **lane quarantine** -- after a successful batch run, lanes flagged
   by the kernel's plane-encoding integrity scan
   (:meth:`~repro.rtl.batchsim.BatchSimulator.check_lane_integrity`)
   or by an external ``quarantine_hook`` (e.g. a monitor-disagreement
   crosscheck) have their outcomes discarded and recomputed on the
   scalar :class:`~repro.faults.campaign.CampaignHarness`;
3. **chunk replay** -- a :class:`LaneFaultError` or a
   :class:`~repro.rtl.toposort.CombinationalCycleError` raised mid-run
   replays the whole chunk on the scalar engine;
4. **permanent scalar** -- a netlist the batch kernel cannot compile
   degrades the harness to scalar-only for its lifetime.

Because the scalar engine is the semantic reference (the batch kernel
is *defined* to agree with it, lane by lane), every rung produces the
same outcomes as an all-scalar campaign -- :func:`verify_degradation`
asserts exactly that, merged degraded run against all-scalar run.

This module must not import :mod:`repro.faults` at module scope: the
``repro.resilience`` package initialises while ``repro.faults.campaign``
is itself mid-import (it pulls in the checkpoint store), so the
campaign imports here are deferred into the methods.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional, Sequence

from repro.rtl.toposort import CombinationalCycleError

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.campaign import CampaignConfig, FaultOutcome
    from repro.faults.models import Injection
    from repro.faults.targets import RtlTarget
    from repro.obs.metrics import MetricsRegistry

__all__ = ["DegradingCampaignHarness", "LaneFaultError", "verify_degradation"]


class LaneFaultError(RuntimeError):
    """A batch run detected faulted lanes it cannot classify.

    ``lanes`` is a bitmask of the affected lanes (0 when the fault
    cannot be attributed to specific lanes).  Raise it from an observer
    or a custom monitor to hand the chunk to the degradation ladder.
    """

    def __init__(self, lanes: int, reason: str) -> None:
        super().__init__(f"batch lane fault ({reason}): lanes {lanes:#x}")
        self.lanes = lanes
        self.reason = reason


class DegradingCampaignHarness:
    """A batch campaign harness that falls back to the scalar engine.

    Drop-in for :class:`~repro.faults.batch.BatchCampaignHarness` --
    same constructor shape, same :meth:`run_chunk` contract -- but a
    lane fault degrades only the affected work instead of raising.

    ``quarantine_hook`` is an optional ``fn(injections, batch_harness)
    -> int`` returning a bitmask of extra lanes to quarantine after a
    successful batch run (the attachment point for crosschecks that
    compare the batch monitors against an independent reference).

    ``batch_factory`` is an optional zero-arg callable building the
    lane-parallel harness; the default builds a
    :class:`~repro.faults.batch.BatchCampaignHarness`, and the campaign
    driver passes a compiled-backend factory here when
    ``backend="compiled"`` is selected.  Whatever the factory raises at
    build time is subject to the same permanent-scalar degradation as a
    batch compile failure.
    """

    def __init__(
        self,
        target: "RtlTarget",
        config: "CampaignConfig",
        lanes: int = 64,
        metrics: Optional["MetricsRegistry"] = None,
        quarantine_hook: Optional[Callable[..., int]] = None,
        batch_factory: Optional[Callable[[], object]] = None,
    ) -> None:
        self.target = target
        self.config = config
        self.lanes = lanes
        self.metrics = metrics
        self.quarantine_hook = quarantine_hook
        self.batch_factory = batch_factory
        #: total lanes replayed on the scalar engine so far
        self.quarantined_total = 0
        self._batch = None
        self._scalar = None
        self._permanent_scalar = False

    # -- lazy engines --------------------------------------------------
    def _batch_harness(self):
        if self._batch is None and not self._permanent_scalar:
            factory = self.batch_factory
            if factory is None:
                from repro.faults.batch import BatchCampaignHarness

                def factory():
                    return BatchCampaignHarness(
                        self.target, self.config, self.lanes,
                        metrics=self.metrics,
                    )

            try:
                self._batch = factory()
            except CombinationalCycleError:
                self._degrade_permanently("compile")
        return self._batch

    def _scalar_harness(self):
        if self._scalar is None:
            from repro.faults.campaign import CampaignHarness

            self._scalar = CampaignHarness(self.target, self.config)
        return self._scalar

    def _degrade_permanently(self, reason: str) -> None:
        self._permanent_scalar = True
        self._batch = None
        self._count(reason, self.lanes)

    def _count(self, reason: str, lanes: int) -> None:
        if self.metrics is not None:
            self.metrics.counter(
                "campaign_lane_quarantine_total",
                reason=reason, target=self.target.name,
            ).inc(lanes)

    # -- the ladder ----------------------------------------------------
    def run_chunk(
        self, injections: Sequence["Injection"]
    ) -> List["FaultOutcome"]:
        """Classify a chunk, degrading to the scalar engine as needed."""
        injections = list(injections)
        if not injections:
            return []
        batch = self._batch_harness()
        if batch is None:  # permanent scalar mode
            return self._scalar_harness().run_chunk(injections)
        try:
            outcomes = batch.run_chunk(injections)
        except LaneFaultError as exc:
            self.quarantined_total += len(injections)
            self._count(exc.reason, len(injections))
            return self._scalar_harness().run_chunk(injections)
        except CombinationalCycleError:
            # The compiled kernel should have caught this at build time;
            # treat a mid-run appearance as a broken batch engine.
            self._degrade_permanently("compile")
            return self._scalar_harness().run_chunk(injections)
        quarantine = batch.sim.check_lane_integrity()
        reason = "integrity"
        if self.quarantine_hook is not None:
            hooked = self.quarantine_hook(injections, batch)
            if hooked:
                reason = "integrity+hook" if quarantine else "hook"
                quarantine |= hooked
        quarantine &= (1 << len(injections)) - 1
        if quarantine:
            scalar = self._scalar_harness()
            replayed = 0
            for lane in range(len(injections)):
                if quarantine & (1 << lane):
                    outcomes[lane] = scalar.outcome(injections[lane])
                    replayed += 1
            self.quarantined_total += replayed
            self._count(reason, replayed)
        return outcomes


def verify_degradation(
    target,
    config: Optional["CampaignConfig"] = None,
    lanes: int = 8,
    quarantine_hook: Optional[Callable[..., int]] = None,
) -> List["FaultOutcome"]:
    """Crosscheck: a degraded campaign equals the all-scalar campaign.

    Runs the full sweep once through :class:`DegradingCampaignHarness`
    (chunked at ``lanes``) and once on the scalar harness, and raises
    ``AssertionError`` on the first differing outcome.  Returns the
    verified outcomes.
    """
    from repro.faults.campaign import (
        CampaignConfig,
        CampaignHarness,
        enumerate_injections,
        resolve_target,
    )

    cfg = config or CampaignConfig()
    tgt = resolve_target(target)
    injections = enumerate_injections(tgt, cfg)
    degraded = DegradingCampaignHarness(
        tgt, cfg, lanes, quarantine_hook=quarantine_hook
    )
    merged: List["FaultOutcome"] = []
    for start in range(0, len(injections), lanes):
        merged.extend(degraded.run_chunk(injections[start:start + lanes]))
    scalar = CampaignHarness(tgt, cfg)
    for i, (got, want) in enumerate(
        zip(merged, scalar.run_chunk(injections))
    ):
        assert got == want, (
            f"degraded outcome {i} ({injections[i].label()}) diverged from "
            f"the all-scalar reference: {got} != {want}"
        )
    return merged
