"""The TraceRecorder: cycle-stamped events from any simulator.

One recorder serves all three execution engines:

* :meth:`TraceRecorder.attach_network` hooks a behavioural
  :class:`~repro.elastic.behavioral.ElasticNetwork` through the
  per-channel observer lists -- every settled cycle yields wire edges,
  the channel event (transfer/kill/retry/idle) and, for early joins,
  ``ee-fire`` events naming the inputs left owing anti-tokens;
* :meth:`TraceRecorder.attach_rtl` hooks a scalar
  :class:`~repro.rtl.simulator.TwoPhaseSimulator` through its
  end-of-cycle observer list and records edges (and X onsets) on a
  watch list of nets;
* :meth:`TraceRecorder.attach_batch` does the same for one lane of a
  :class:`~repro.rtl.batchsim.BatchSimulator`, producing a stream
  bit-identical to the scalar one for equivalent runs.

Events land in a bounded ring buffer (oldest evicted first) and are
forwarded to pluggable sinks (:class:`JsonlSink`, :class:`~repro.obs.
vcd.VcdSink`, or anything with ``emit``/``close``).  A recorder
constructed with ``enabled=False`` attaches *nothing*: the attach
methods return immediately, so a disabled trace leaves every simulator
on exactly the code path an untraced run takes -- the zero-cost no-op
guarantee the overhead benchmark locks.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, TextIO, Union

from repro.elastic.protocol import DualChannelEvent, ProtocolViolation, classify_dual
from repro.obs.events import TraceEvent
from repro.obs.metrics import MetricsRegistry
from repro.rtl.logic import X

__all__ = ["JsonlSink", "TraceRecorder", "collect_network_metrics"]

_WIRE_NAMES = ("vp", "sp", "vn", "sn")

_EVENT_KIND = {
    DualChannelEvent.POSITIVE_TRANSFER: "transfer+",
    DualChannelEvent.NEGATIVE_TRANSFER: "transfer-",
    DualChannelEvent.KILL: "kill",
    DualChannelEvent.RETRY_POS: "retry+",
    DualChannelEvent.RETRY_NEG: "retry-",
    DualChannelEvent.IDLE: "idle",
}


class JsonlSink:
    """A trace sink writing one JSON object per event."""

    def __init__(self, target: Union[str, TextIO]):
        if isinstance(target, str):
            self._handle: TextIO = open(target, "w")
            self._owned = True
        else:
            self._handle = target
            self._owned = False
        self.emitted = 0

    def declare_wire(self, subject: str) -> None:  # sink protocol
        pass

    def emit(self, event: TraceEvent) -> None:
        self._handle.write(event.to_json() + "\n")
        self.emitted += 1

    def close(self) -> None:
        if self._owned:
            self._handle.close()


class TraceRecorder:
    """Bounded ring buffer of :class:`TraceEvent` with pluggable sinks."""

    def __init__(
        self,
        capacity: int = 65536,
        sinks: Sequence[object] = (),
        enabled: bool = True,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.enabled = enabled
        self.capacity = capacity
        self.events: "deque[TraceEvent]" = deque(maxlen=capacity)
        self.sinks = list(sinks)
        self.metrics = metrics
        self.emitted = 0
        self._counts: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Core emission
    # ------------------------------------------------------------------
    def emit(self, cycle: int, kind: str, subject: str,
             value: object = None,
             extra: Optional[Dict[str, object]] = None) -> None:
        if not self.enabled:
            return
        event = TraceEvent(cycle, kind, subject, value, extra)
        self.events.append(event)
        self.emitted += 1
        self._counts[kind] = self._counts.get(kind, 0) + 1
        for sink in self.sinks:
            sink.emit(event)

    def counts(self) -> Dict[str, int]:
        """Events emitted so far, per kind (incl. ring-evicted ones)."""
        return dict(sorted(self._counts.items()))

    def close(self) -> None:
        """Flush and close every sink."""
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()

    def _declare(self, subject: str) -> None:
        for sink in self.sinks:
            declare = getattr(sink, "declare_wire", None)
            if declare is not None:
                declare(subject)

    # ------------------------------------------------------------------
    # Behavioural network attachment
    # ------------------------------------------------------------------
    def attach_network(self, net, channels: Optional[Iterable[str]] = None,
                       include_idle: bool = False) -> "TraceRecorder":
        """Hook a behavioural :class:`ElasticNetwork`'s settled cycles.

        Adds one observer per channel (wire edges + channel events) and
        one per early join (``ee-fire``).  With ``enabled=False`` this
        is a no-op: nothing is attached and the network runs untouched.
        """
        if not self.enabled:
            return self
        from repro.elastic.behavioral import EarlyJoin

        names = list(channels) if channels is not None else list(net.channels)
        for name in names:
            for wire in _WIRE_NAMES:
                self._declare(f"{name}.{wire}")
        for name in names:
            net.channels[name].observers.append(
                self._channel_observer(net, net.channels[name], include_idle)
            )
        for ctrl in net.controllers:
            if isinstance(ctrl, EarlyJoin) and ctrl.output.name in net.channels:
                ctrl.output.observers.append(self._ee_observer(net, ctrl))
        return self

    def _channel_observer(self, net, ch, include_idle: bool):
        prev = [X, X, X, X]
        metrics = self.metrics
        fired = (
            metrics.counter("channel_events_total", channel=ch.name, kind="all")
            if metrics is not None else None
        )

        def observe(channel) -> None:
            t = net.cycle
            wires = (ch.vp, ch.sp, ch.vn, ch.sn)
            for i, wire in enumerate(_WIRE_NAMES):
                new = wires[i]
                if new is not prev[i] and new != prev[i]:
                    if new is X:
                        self.emit(t, "x-onset", f"{ch.name}.{wire}")
                    else:
                        self.emit(t, "edge", f"{ch.name}.{wire}", new)
                    prev[i] = new
            try:
                event = classify_dual(ch.vp, ch.sp, ch.vn, ch.sn)
            except ProtocolViolation as exc:
                self.emit(t, "invariant", ch.name, extra={"detail": str(exc)})
                return
            kind = _EVENT_KIND[event]
            if kind == "idle" and not include_idle:
                return
            self.emit(t, kind, ch.name)
            if fired is not None and kind != "idle":
                fired.inc()

        return observe

    def _ee_observer(self, net, ctrl):
        metrics = self.metrics
        fires = early = None
        if metrics is not None:
            fires = metrics.counter("ee_firings_total", join=ctrl.name)
            early = metrics.counter("ee_early_firings_total", join=ctrl.name)

        def observe(channel) -> None:
            out = ctrl.output
            if not (out.vp == 1 and out.sp == 0):
                return
            missing = [
                ctrl.inputs[i].name
                for i in range(len(ctrl.inputs))
                if not (ctrl.inputs[i].vp == 1 and ctrl.apend[i] == 0)
            ]
            if fires is not None:
                fires.inc()
                if missing:
                    early.inc()
            self.emit(
                net.cycle, "ee-fire", ctrl.name,
                extra={"early": bool(missing), "missing": missing},
            )

        return observe

    # ------------------------------------------------------------------
    # RTL attachments (scalar + one batch lane)
    # ------------------------------------------------------------------
    def attach_rtl(self, sim, watch: Sequence[str]) -> "TraceRecorder":
        """Hook a scalar :class:`TwoPhaseSimulator` on a net watch list."""
        if not self.enabled:
            return self
        watch = list(watch)
        for net in watch:
            self._declare(net)
        prev: Dict[str, object] = {}

        def observe(time: int, values: Dict[str, object]) -> None:
            for net in watch:
                new = values.get(net, X)
                old = prev.get(net, X)
                if new is not old and new != old:
                    if new is X:
                        self.emit(time, "x-onset", net)
                    else:
                        self.emit(time, "edge", net, new)
                    prev[net] = new

        sim.observers.append(observe)
        return self

    def attach_batch(self, sim, watch: Sequence[str],
                     lane: int = 0) -> "TraceRecorder":
        """Hook one lane of a batch or compiled simulator on a watch list.

        Produces the same edge/x-onset stream the scalar attachment
        yields for an equivalent run of that lane.  Works on
        :class:`~repro.rtl.batchsim.BatchSimulator` and on
        :class:`~repro.codegen.sim.CompiledSimulator`: every watched
        net is validated through ``planes()`` at attach time, so a net
        missing from a compiled module's observed set fails loudly here
        instead of silently tracing a stale slot.
        """
        if not self.enabled:
            return self
        watch = list(watch)
        for net in watch:
            self._declare(net)
            sim.planes(net)  # raises for unobserved compiled nets
        slots = [(net, sim.slot(net)) for net in watch]
        bit = 1 << lane
        prev: Dict[str, object] = {}
        # Fast path: plane storage exposing plain Python ints (the
        # batch kernel always, the compiled backend's int
        # representation).  Other representations (numpy planes) go
        # through the per-net planes() accessor.
        v, k = sim.value_planes, sim.known_planes
        direct = all(
            isinstance(v[slot], int) and isinstance(k[slot], int)
            for _, slot in slots
        )

        def observe(time: int, s) -> None:
            for net, slot in slots:
                if direct:
                    nv, nk = v[slot], k[slot]
                else:
                    nv, nk = s.planes(net)
                if nk & bit:
                    new: object = 1 if nv & bit else 0
                else:
                    new = X
                old = prev.get(net, X)
                if new is not old and new != old:
                    if new is X:
                        self.emit(time, "x-onset", net)
                    else:
                        self.emit(time, "edge", net, new)
                    prev[net] = new

        sim.observers.append(observe)
        return self


def collect_network_metrics(net, registry: MetricsRegistry) -> MetricsRegistry:
    """Fold a finished network's per-channel stats into ``registry``.

    Registers, per channel: event counters (``dir`` label ``+``/``-``/
    ``kill``), a throughput gauge (the paper's Th) and the stall/bubble
    fractions.  Safe to call repeatedly (counters are get-or-create, so
    call it once per run).
    """
    for name in sorted(net.channels):
        stats = net.channels[name].stats
        registry.counter("channel_transfers_total", channel=name,
                         dir="+").inc(stats.positive)
        registry.counter("channel_transfers_total", channel=name,
                         dir="-").inc(stats.negative)
        registry.counter("channel_kills_total", channel=name).inc(stats.kills)
        registry.gauge("channel_throughput", channel=name).set(
            round(stats.throughput, 6)
        )
        cycles = stats.cycles or 1
        registry.gauge("channel_stall_fraction", channel=name).set(
            round((stats.retries_pos + stats.retries_neg) / cycles, 6)
        )
        registry.gauge("channel_idle_fraction", channel=name).set(
            round(stats.idle / cycles, 6)
        )
    return registry
