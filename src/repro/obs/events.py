"""The trace-event taxonomy shared by every simulator.

One :class:`TraceEvent` is one cycle-stamped observation.  The ``kind``
vocabulary (see :data:`EVENT_KINDS`) covers the dynamic phenomena the
paper argues about:

========== ===========================================================
kind       meaning
========== ===========================================================
edge       a wire settled to a new known value (``value`` is 0/1)
x-onset    a wire went from a known value back to unknown (``X``)
transfer+  a token moved forward on a channel
transfer-  an anti-token moved backward on a channel
kill       token and anti-token annihilated on a channel
retry+     a token was offered and stalled (back-pressure cycle)
retry-     an anti-token was offered and stalled
idle       nothing was offered on the channel (a bubble)
ee-fire    an early-evaluation join fired; ``extra['missing']`` names
           the inputs left owing anti-tokens, ``extra['early']`` is
           True when that list is non-empty
invariant  the equation (2) invariant broke on the channel (fault runs)
stall      a no-progress watchdog fired; ``extra`` carries the
           :class:`~repro.resilience.StallDiagnosis` fields (the
           asserted-Stop cycle, the blocked wires, the window)
finding    a static-analysis finding (:mod:`repro.lint`); ``value`` is
           the rule code, ``extra`` the severity/target/message (and
           cycle path when the rule reports one); stamped cycle 0
========== ===========================================================

``subject`` names the channel or wire; the behavioural channel wires
are ``<channel>.vp`` / ``.sp`` / ``.vn`` / ``.sn``, matching the VCD
variable mapping documented in DESIGN.md.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["EVENT_KINDS", "TraceEvent"]

EVENT_KINDS = (
    "edge",
    "x-onset",
    "transfer+",
    "transfer-",
    "kill",
    "retry+",
    "retry-",
    "idle",
    "ee-fire",
    "invariant",
    "stall",
    "finding",
)


@dataclass(frozen=True)
class TraceEvent:
    """One cycle-stamped structured event."""

    cycle: int
    kind: str
    subject: str
    value: object = None
    extra: Optional[Dict[str, object]] = None

    def to_dict(self) -> Dict[str, object]:
        d: Dict[str, object] = {
            "t": self.cycle,
            "kind": self.kind,
            "subject": self.subject,
        }
        if self.value is not None:
            d["value"] = self.value
        if self.extra:
            d.update(self.extra)
        return d

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"), default=str)

    def __str__(self) -> str:
        value = "" if self.value is None else f" = {self.value}"
        return f"[{self.cycle:6d}] {self.kind:10s} {self.subject}{value}"
