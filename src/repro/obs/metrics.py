"""Metrics registry: counters, gauges and histograms with labels.

The registry is the single sink for every quantitative observation in
the repo -- per-channel throughput and stall fractions, token latency
distributions, buffer occupancy, early-evaluation firing rates,
batchsim lane utilization and fault-campaign verdict tallies.  It
subsumes the ad-hoc accumulators that used to live in
:mod:`repro.elastic.instrumentation` (which now delegates here).

Design points:

* **Labeled series** -- ``registry.counter("transfers", channel="a")``
  and ``registry.counter("transfers", channel="b")`` are independent
  series under one metric name; a series is identified by its name plus
  the sorted ``(key, value)`` label pairs.
* **Get-or-create** -- asking twice for the same (name, labels) returns
  the same object, so instruments can be resolved in hot loops without
  bookkeeping at the call site.
* **Snapshot API** -- :meth:`MetricsRegistry.snapshot` returns a plain
  ``dict`` keyed by the rendered series name, JSON-ready and
  deterministic (sorted) for golden tests and campaign reports.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SummaryStats",
    "summarize",
]


def _canon(value):
    """Canonicalise a number for byte-stable snapshot rendering.

    Python floats and ints that compare equal render differently in
    JSON (``3`` vs ``3.0``), so a snapshot's bytes would depend on
    whether a sample arrived as ``int`` or ``float``.  Integral values
    collapse to ``int``; everything else rounds to 6 decimal places
    (which also keeps ``repr`` round-trips stable across platforms).
    """
    try:
        f = float(value)
    except (TypeError, ValueError):
        return value
    if math.isnan(f) or math.isinf(f):
        return value
    r = round(f, 6)
    if r.is_integer():
        return int(r)
    return r


@dataclass(frozen=True)
class SummaryStats:
    """Summary of a numeric sample (count/mean/p50/p95/max)."""

    count: int
    mean: float
    p50: float
    p95: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.2f} p50={self.p50:.0f} "
            f"p95={self.p95:.0f} max={self.maximum}"
        )


def summarize(samples: Sequence[float]) -> SummaryStats:
    """Mean/median/p95/max of a sample (empty samples give all zeros)."""
    if not samples:
        return SummaryStats(0, 0.0, 0.0, 0.0, 0)
    ordered = sorted(samples)
    n = len(ordered)

    def pct(p: float) -> float:
        idx = min(n - 1, max(0, math.ceil(p * n) - 1))
        return float(ordered[idx])

    return SummaryStats(
        count=n,
        mean=sum(ordered) / n,
        p50=pct(0.50),
        p95=pct(0.95),
        maximum=ordered[-1],
    )


def _render_key(name: str, labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


def _prom_name(name: str) -> str:
    """A valid Prometheus metric/label name ([a-zA-Z_:][a-zA-Z0-9_:]*)."""
    sanitized = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not sanitized or sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _prom_escape(value: str) -> str:
    """Escape a label value per the text exposition format."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _prom_labels(labels: Sequence[Tuple[str, str]]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{_prom_name(k)}="{_prom_escape(v)}"' for k, v in labels)
    return f"{{{inner}}}"


def _prom_number(value) -> str:
    canonical = _canon(value)
    return repr(canonical) if isinstance(canonical, float) else str(canonical)


class Metric:
    """Base: one series of one metric (name + sorted label pairs)."""

    kind = "metric"

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...]):
        self.name = name
        self.labels = labels

    @property
    def key(self) -> str:
        return _render_key(self.name, self.labels)

    def snapshot(self) -> object:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.key!r}, {self.snapshot()!r})"


class Counter(Metric):
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...]):
        super().__init__(name, labels)
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def snapshot(self) -> int:
        return self.value


class Gauge(Metric):
    """A sampled value; remembers the last sample and running moments."""

    kind = "gauge"

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...]):
        super().__init__(name, labels)
        self.last: Optional[float] = None
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def set(self, value: float) -> None:
        self.last = value
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        if self.count == 0:
            return 0.0
        return self.total / self.count

    def snapshot(self) -> Dict[str, float]:
        return {
            "last": _canon(self.last if self.last is not None else 0),
            "mean": _canon(self.mean),
            "min": _canon(self.minimum if self.minimum is not None else 0),
            "max": _canon(self.maximum if self.maximum is not None else 0),
            "n": self.count,
        }


class Histogram(Metric):
    """A full sample, summarised as count/mean/p50/p95/max."""

    kind = "histogram"

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...]):
        super().__init__(name, labels)
        self.samples: List[float] = []

    def observe(self, value: float) -> None:
        self.samples.append(value)

    def stats(self) -> SummaryStats:
        return summarize(self.samples)

    def snapshot(self) -> Dict[str, float]:
        s = self.stats()
        return {
            "count": s.count,
            "mean": _canon(s.mean),
            "p50": _canon(s.p50),
            "p95": _canon(s.p95),
            "max": _canon(s.maximum),
        }


class MetricsRegistry:
    """A namespace of labeled counters, gauges and histograms."""

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], Metric] = {}

    def _get(self, cls, name: str, labels: Dict[str, object]) -> Metric:
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, key[1])
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"{metric.key} already registered as {metric.kind}, "
                f"not {cls.kind}"
            )
        return metric

    def counter(self, name: str, **labels: object) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: object) -> Histogram:
        return self._get(Histogram, name, labels)

    def series(self, name: str) -> List[Metric]:
        """Every registered series of one metric name, sorted by key."""
        return sorted(
            (m for m in self._metrics.values() if m.name == name),
            key=lambda m: m.key,
        )

    def __iter__(self) -> Iterable[Metric]:
        return iter(sorted(self._metrics.values(), key=lambda m: m.key))

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> Dict[str, object]:
        """All series as a flat, deterministically ordered dict."""
        return {m.key: m.snapshot() for m in self}

    def render_prometheus(self) -> str:
        """Prometheus text exposition (format 0.0.4) of every series.

        Counters render as ``counter``, gauges as ``gauge`` (their last
        sample), histograms as ``summary`` with ``quantile="0.5"`` /
        ``quantile="0.95"`` series plus ``_sum`` and ``_count``.  Output
        is deterministic: groups sorted by (name, kind), series sorted
        by label key, numbers canonicalised via the same rule as
        :meth:`snapshot`.
        """
        groups: Dict[Tuple[str, str], List[Metric]] = {}
        for metric in self:
            groups.setdefault((metric.name, metric.kind), []).append(metric)
        lines: List[str] = []
        for (name, kind) in sorted(groups):
            pname = _prom_name(name)
            ptype = {"counter": "counter", "gauge": "gauge", "histogram": "summary"}[kind]
            lines.append(f"# TYPE {pname} {ptype}")
            for metric in groups[(name, kind)]:
                labels = list(metric.labels)
                if kind == "counter":
                    lines.append(f"{pname}{_prom_labels(labels)} {_prom_number(metric.value)}")
                elif kind == "gauge":
                    last = metric.last if metric.last is not None else 0
                    lines.append(f"{pname}{_prom_labels(labels)} {_prom_number(last)}")
                else:
                    s = metric.stats()
                    for q, v in (("0.5", s.p50), ("0.95", s.p95)):
                        qlabels = labels + [("quantile", q)]
                        lines.append(f"{pname}{_prom_labels(qlabels)} {_prom_number(v)}")
                    total = sum(metric.samples)
                    lines.append(f"{pname}_sum{_prom_labels(labels)} {_prom_number(total)}")
                    lines.append(f"{pname}_count{_prom_labels(labels)} {s.count}")
        return "\n".join(lines) + ("\n" if lines else "")

    def render(self) -> str:
        """Human-readable sorted dump of every series."""
        lines = []
        for metric in self:
            value = metric.snapshot()
            if isinstance(value, dict):
                inner = " ".join(f"{k}={v}" for k, v in value.items())
                lines.append(f"{metric.key:48s} {inner}")
            else:
                lines.append(f"{metric.key:48s} {value}")
        return "\n".join(lines)
