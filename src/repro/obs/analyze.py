"""Stall attribution and throughput observatory (``repro profile``).

Where :mod:`repro.obs.recorder` answers "what happened, cycle by
cycle", this module answers "where did the cycles *go*" -- one
deterministic JSON performance report over any of the three execution
engines (behavioural network, scalar/batch gate-level, compiled):

* **cycle accounting** -- every channel-cycle lands in exactly one of
  the six strict-bit categories (``transfer+``/``transfer-``/``kill``/
  ``retry+``/``retry-``/``idle``), plus token/anti-token conservation
  totals per elastic buffer (occupancy delta must equal boundary flux,
  the same invariant the fault-campaign monitors check online);
* **backpressure attribution** -- each blocked Stop wire is walked
  backwards through the asserted-Stop chain (the resilience watchdogs'
  wait-for-graph machinery) to the root-cause wire, and the lost
  channel-cycles are tallied per blocking sink and per root;
* **critical-cycle analysis** -- the DMG abstraction's
  throughput-bounding cycle is named arc by arc, the timed DMG
  simulator predicts the throughput with early evaluation, and the
  measured figure is compared against it (divergence beyond the
  tolerance is *flagged*, because a protocol-level restriction the
  abstraction cannot see -- e.g. a passive M2->W boundary -- is
  exactly what the report should surface);
* **EE benefit accounting** -- early firings, anti-tokens generated
  and annihilated, and the cycles saved against a late-evaluation
  replay of the same design (early join vs lazy join, Fig. 9 active
  vs lazy, early vs in-order writeback).

Reports are byte-identical across repeated seeded runs and across the
``scalar``/``batch``/``compiled`` backends; per-lane stall diagnoses
drop their backend-specific fields before serialisation to keep that
guarantee.  Profilers constructed with ``enabled=False`` attach
nothing, mirroring the :class:`~repro.obs.recorder.TraceRecorder`
zero-cost no-op guarantee that the overhead benchmark locks.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.obs.metrics import _canon
from repro.rtl.logic import X

__all__ = [
    "CATEGORIES",
    "NetworkProfiler",
    "PerformanceReport",
    "RtlChannelProfiler",
    "classify_strict",
    "model_section",
    "profile_designs",
    "run_profile",
]

#: the six cycle-accounting buckets (every channel-cycle lands in one)
CATEGORIES = ("transfer+", "transfer-", "kill", "retry+", "retry-", "idle")

#: no-progress window of the embedded (non-raising) stall watchdogs
_WINDOW = 64

_EMPTY: Dict[str, Set[str]] = {}


def classify_strict(vp, sp, vn, sn) -> str:
    """Classify one settled channel-cycle from its four wire values.

    Mirrors :func:`repro.elastic.protocol.classify_dual` but never
    raises: unknown (``X``) wires fall through to ``idle``, so the
    classifier is safe on reset transients and fault-corrupted runs.
    """
    if vp == 1 and vn == 1:
        return "kill"
    if vp == 1 and sp == 0:
        return "transfer+"
    if vn == 1 and sn == 0:
        return "transfer-"
    if vp == 1 and sp == 1:
        return "retry+"
    if vn == 1 and sn == 1:
        return "retry-"
    return "idle"


def _walk_root(
    wire: str,
    blocked: Set[str],
    primary: Mapping[str, Set[str]],
    fallback: Mapping[str, Set[str]],
) -> str:
    """Walk a blocked Stop wire back to its root cause.

    From ``wire``, repeatedly step to the smallest *blocked* wire in
    the primary dependency cone (combinational at gate level), falling
    back to the secondary cone (cross-cycle, through latch/flop ``d``
    pins) when the primary has none.  The walk terminates at a wire
    none of whose dependencies are blocked -- the root -- or when it
    would revisit a wire (a deadlock ring reports its smallest member).
    """
    seen = {wire}
    node = wire
    while True:
        deps = sorted((primary.get(node, set()) & blocked) - seen)
        if not deps:
            deps = sorted((fallback.get(node, set()) & blocked) - seen)
        if not deps:
            return node
        node = deps[0]
        seen.add(node)


def _stall_dict(diagnosis) -> Dict[str, object]:
    """A stall diagnosis as backend-independent JSON.

    The ``detail`` (names the engine) and ``lane`` fields are dropped:
    the same stall diagnosed by the scalar and the per-lane watchdogs
    must serialise identically for the cross-backend byte guarantee.
    """
    return {
        "blocked": list(diagnosis.blocked),
        "cycle": diagnosis.cycle,
        "last_progress": diagnosis.last_progress,
        "stop_cycle": list(diagnosis.stop_cycle),
        "window": diagnosis.window,
    }


def _fraction(value: Fraction) -> str:
    return f"{value.numerator}/{value.denominator}"


# ----------------------------------------------------------------------
# Gate-level profiler (scalar, batch and compiled backends)
# ----------------------------------------------------------------------
class RtlChannelProfiler:
    """Per-channel cycle accounting and stall attribution at gate level.

    One instance serves all three RTL engines: :meth:`attach_scalar`
    hooks a :class:`~repro.rtl.simulator.TwoPhaseSimulator`,
    :meth:`attach_lane` one lane of a
    :class:`~repro.rtl.batchsim.BatchSimulator` or
    :class:`~repro.codegen.sim.CompiledSimulator` (all watched channel
    wires must be in a compiled module's observed set).  With
    ``enabled=False`` the attach methods are no-ops.

    ``ee`` optionally names an early join to account:
    ``{"output": <channel>, "inputs": [<channel>, ...]}`` -- a firing
    of the output with some input valid missing is an early firing,
    and each missing input owes one generated anti-token.
    """

    def __init__(self, target, enabled: bool = True, ee=None) -> None:
        self.target = target
        self.enabled = enabled
        self.ee = ee
        self.cycles = 0
        self.counts: Dict[str, Dict[str, int]] = {
            ch.name: {cat: 0 for cat in CATEGORIES} for ch in target.channels
        }
        self.lost: Dict[str, int] = {}
        self.roots: Dict[str, Dict[str, int]] = {}
        self.ee_fires = 0
        self.ee_early = 0
        self.ee_generated = 0
        self._sim = None
        self._lane: Optional[int] = None
        self._fanin_comb: Dict[str, Set[str]] = {}
        self._fanin_seq: Dict[str, Set[str]] = {}
        self._ee_out = None
        self._ee_ins: List = []

    # -- attachment ----------------------------------------------------
    def _prepare(self, sim, lane: Optional[int]) -> None:
        from repro.resilience.watchdog import _fanin_cones

        self._sim = sim
        self._lane = lane
        watched = [ch.sp for ch in self.target.channels]
        watched += [ch.sn for ch in self.target.channels]
        self._fanin_comb = _fanin_cones(
            sim.netlist, watched, sequential=False
        )
        self._fanin_seq = _fanin_cones(sim.netlist, watched, sequential=True)
        if self.ee is not None:
            by_name = {ch.name: ch for ch in self.target.channels}
            self._ee_out = by_name[self.ee["output"]]
            self._ee_ins = [by_name[name] for name in self.ee["inputs"]]

    def attach_scalar(self, sim) -> "RtlChannelProfiler":
        """Hook a scalar two-phase simulator's end-of-cycle observers."""
        if not self.enabled:
            return self
        self._prepare(sim, lane=None)

        def observe(time: int, values: Dict[str, object]) -> None:
            self._account(values)

        sim.observers.append(observe)
        return self

    def attach_lane(self, sim, lane: int = 0) -> "RtlChannelProfiler":
        """Hook one lane of a batch or compiled simulator."""
        from repro.rtl.batchsim import strict_planes

        if not self.enabled:
            return self
        self._prepare(sim, lane=lane)
        wires = [w for ch in self.target.channels for w in ch.wires()]
        bit = 1 << lane

        def observe(time: int, s) -> None:
            values: Dict[str, object] = {}
            for wire in wires:
                ones, zeros = strict_planes(s, wire)
                values[wire] = 1 if ones & bit else (0 if zeros & bit else X)
            self._account(values)

        sim.observers.append(observe)
        return self

    # -- per-cycle accounting ------------------------------------------
    def _account(self, values: Mapping[str, object]) -> None:
        from repro.resilience.watchdog import blocked_wires

        self.cycles += 1
        for ch in self.target.channels:
            cat = classify_strict(
                values.get(ch.vp), values.get(ch.sp),
                values.get(ch.vn), values.get(ch.sn),
            )
            self.counts[ch.name][cat] += 1
        blocked = blocked_wires(self.target.channels, values)
        for wire in sorted(blocked):
            root = _walk_root(
                wire, blocked, self._fanin_comb, self._fanin_seq
            )
            self.lost[wire] = self.lost.get(wire, 0) + 1
            by_root = self.roots.setdefault(wire, {})
            by_root[root] = by_root.get(root, 0) + 1
        if self._ee_out is not None:
            out = self._ee_out
            if values.get(out.vp) == 1 and values.get(out.sp) == 0:
                self.ee_fires += 1
                missing = sum(
                    1 for ch in self._ee_ins if values.get(ch.vp) != 1
                )
                if missing:
                    self.ee_early += 1
                    self.ee_generated += missing
            return

    # -- report sections -----------------------------------------------
    def _final_state(self) -> Mapping[str, object]:
        if self._lane is None:
            return dict(self._sim.state)
        return self._sim.lane_state(self._lane)

    def channel_section(self) -> Dict[str, Dict[str, object]]:
        cycles = self.cycles or 1
        section: Dict[str, Dict[str, object]] = {}
        for name in sorted(self.counts):
            counts = self.counts[name]
            moved = counts["transfer+"] + counts["transfer-"] + counts["kill"]
            entry: Dict[str, object] = dict(counts)
            entry["throughput"] = _canon(moved / cycles)
            section[name] = entry
        return section

    def conservation_section(self) -> Dict[str, object]:
        netlist = self.target.netlist
        buffers: Dict[str, object] = {}
        complete = True
        final_state = self._final_state() if self.target.ebs else {}
        for probe in self.target.ebs:
            initial = probe.occupancy(_initial_bits(netlist, probe))
            final = probe.occupancy(final_state)
            left = self.counts[probe.left.name]
            right = self.counts[probe.right.name]
            flux = (
                left["transfer+"] + left["kill"] + left["transfer-"]
                - right["transfer+"] - right["kill"] - right["transfer-"]
            )
            residual = (final - initial) - flux
            if residual != 0:
                complete = False
            buffers[probe.prefix] = {
                "initial": initial, "final": final,
                "delta": final - initial, "flux": flux,
                "residual": residual,
            }
        totals = _conservation_totals(self.counts.values())
        totals["buffers"] = buffers
        totals["complete"] = complete
        return totals

    def attribution_section(
        self, diagnoses: Sequence = ()
    ) -> Dict[str, object]:
        return _attribution(self.lost, self.roots, diagnoses)

    def throughput(self, channel: str) -> float:
        counts = self.counts[channel]
        moved = counts["transfer+"] + counts["transfer-"] + counts["kill"]
        return moved / (self.cycles or 1)


def _initial_bits(netlist, probe) -> Dict[str, object]:
    """Reset values of an EB probe's state bits, from the netlist."""
    bits: Dict[str, object] = {}
    for sig in probe.state_bits:
        if sig in netlist.flops:
            bits[sig] = netlist.flops[sig].init
        elif sig in netlist.latches:
            bits[sig] = netlist.latches[sig].init
    return bits


def _conservation_totals(channel_counts) -> Dict[str, object]:
    tokens = anti = kills = 0
    for counts in channel_counts:
        tokens += counts["transfer+"]
        anti += counts["transfer-"]
        kills += counts["kill"]
    return {
        "tokens_moved": tokens,
        "anti_tokens_moved": anti,
        "annihilated": kills,
    }


def _attribution(
    lost: Mapping[str, int],
    roots: Mapping[str, Mapping[str, int]],
    diagnoses: Sequence,
) -> Dict[str, object]:
    sinks: Dict[str, object] = {}
    for wire in sorted(lost):
        sinks[wire] = {
            "lost": lost[wire],
            "roots": {r: roots[wire][r] for r in sorted(roots.get(wire, {}))},
        }
    return {
        "lost_cycles": sum(lost.values()),
        "sinks": sinks,
        "stalls": [_stall_dict(d) for d in diagnoses],
    }


# ----------------------------------------------------------------------
# Behavioural-network profiler
# ----------------------------------------------------------------------
class NetworkProfiler:
    """Cycle accounting and stall attribution for an ElasticNetwork.

    The channel counters come straight from each channel's
    :class:`~repro.elastic.channel.ChannelStats` (the behavioural
    classifier); the attribution probe and the early-join observers are
    the only per-cycle additions.  With ``enabled=False``,
    :meth:`attach` is a no-op.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.lost: Dict[str, int] = {}
        self.roots: Dict[str, Dict[str, int]] = {}
        self.joins: Dict[str, Dict[str, int]] = {}
        self._net = None
        self._adjacency: Dict[str, Set[str]] = {}
        self._ebs: List = []
        self._initial: Dict[str, int] = {}

    def attach(self, net) -> "NetworkProfiler":
        if not self.enabled:
            return self
        from repro.elastic.behavioral import EarlyJoin, ElasticBuffer
        from repro.resilience.watchdog import _controller_ports

        self._net = net
        adjacency: Dict[str, Set[str]] = {}
        for ctrl in net.controllers:
            ports = _controller_ports(ctrl)
            if ports is None:
                continue
            ins, outs = ports
            # A full controller stops its inputs because its outputs
            # are stopped (in.sp waits on out.sp); anti-token
            # back-pressure flows the other way (out.sn on in.sn).
            for i in ins:
                adjacency.setdefault(f"{i.name}.sp", set()).update(
                    f"{o.name}.sp" for o in outs
                )
            for o in outs:
                adjacency.setdefault(f"{o.name}.sn", set()).update(
                    f"{i.name}.sn" for i in ins
                )
        self._adjacency = adjacency
        self._ebs = [
            c for c in net.controllers if isinstance(c, ElasticBuffer)
        ]
        self._initial = {eb.name: eb.count for eb in self._ebs}
        for ctrl in net.controllers:
            if isinstance(ctrl, EarlyJoin):
                tally = {"fires": 0, "early": 0, "generated": 0}
                self.joins[ctrl.name] = tally
                ctrl.output.observers.append(self._ee_observer(ctrl, tally))
        net.add_probe(self._probe)
        return self

    def _ee_observer(self, ctrl, tally: Dict[str, int]):
        def observe(channel) -> None:
            out = ctrl.output
            if not (out.vp == 1 and out.sp == 0):
                return
            tally["fires"] += 1
            missing = sum(
                1 for i, ch in enumerate(ctrl.inputs)
                if not (ch.vp == 1 and ctrl.apend[i] == 0)
            )
            if missing:
                tally["early"] += 1
                tally["generated"] += missing

        return observe

    def _probe(self, net) -> None:
        blocked: Set[str] = set()
        for name, ch in net.channels.items():
            if ch.vp == 1 and ch.sp == 1 and ch.vn != 1:
                blocked.add(f"{name}.sp")
            if ch.vn == 1 and ch.sn == 1 and ch.vp != 1:
                blocked.add(f"{name}.sn")
        for wire in sorted(blocked):
            root = _walk_root(wire, blocked, self._adjacency, _EMPTY)
            self.lost[wire] = self.lost.get(wire, 0) + 1
            by_root = self.roots.setdefault(wire, {})
            by_root[root] = by_root.get(root, 0) + 1

    # -- report sections -----------------------------------------------
    def channel_section(self) -> Dict[str, Dict[str, object]]:
        net = self._net
        section: Dict[str, Dict[str, object]] = {}
        for name in sorted(net.channels):
            stats = net.channels[name].stats
            entry: Dict[str, object] = stats.accounting()
            entry["throughput"] = _canon(stats.throughput)
            section[name] = entry
        return section

    def conservation_section(self) -> Dict[str, object]:
        buffers: Dict[str, object] = {}
        complete = True
        channels = self._net.channels
        for eb in self._ebs:
            initial = self._initial[eb.name]
            final = eb.count
            ls = channels[eb.left.name].stats
            rs = channels[eb.right.name].stats
            flux = (
                ls.positive + ls.kills + ls.negative
                - rs.positive - rs.kills - rs.negative
            )
            residual = (final - initial) - flux
            if residual != 0:
                complete = False
            buffers[eb.name] = {
                "initial": initial, "final": final,
                "delta": final - initial, "flux": flux,
                "residual": residual,
            }
        totals = _conservation_totals(
            ch.stats.accounting() for ch in channels.values()
        )
        totals["buffers"] = buffers
        totals["complete"] = complete
        return totals

    def attribution_section(
        self, diagnoses: Sequence = ()
    ) -> Dict[str, object]:
        return _attribution(self.lost, self.roots, diagnoses)


# ----------------------------------------------------------------------
# Model comparison (critical cycle + timed DMG prediction)
# ----------------------------------------------------------------------
def model_section(
    spec,
    reference: str,
    measured: float,
    cycles: int,
    seed: int,
    tolerance: float,
    guards=None,
    mean_latency=None,
) -> Dict[str, object]:
    """Compare a measured throughput against the DMG abstraction.

    Names the critical (throughput-bounding) cycle of the abstraction
    -- ``structural`` when a latency-weighted cycle binds below one
    firing per clock, else ``clock`` with unit arc delays -- then runs
    the timed DMG simulator (early-evaluation guards, variable
    latencies, eager capacity-return arcs) for the same ``cycles`` and
    ``seed`` and reports the divergence of the measurement from that
    prediction.  Divergence beyond ``tolerance`` is flagged, not
    hidden: a protocol-level effect the abstraction cannot express
    (e.g. a passive boundary restricting counterflow) shows up here.
    """
    from repro.core.analysis import critical_cycle_arcs
    from repro.core.performance import TimedDMGSimulator
    from repro.synthesis.abstraction import spec_to_dmg, throughput_bound

    graph, lat = spec_to_dmg(spec, mean_latency)

    def forward(arc) -> bool:
        return not (arc.name.startswith("~") or arc.name.startswith("env:"))

    delays = {a.name: lat.get(a.src, 0) for a in graph.arcs if forward(a)}
    limit = "structural"
    try:
        ratio, arcs = critical_cycle_arcs(graph, delays)
    except ValueError:
        ratio = None
        arcs = ()
    if ratio is None or ratio >= 1:
        # No latency-weighted cycle binds below one firing per clock:
        # the clock itself is the limit.  Name the bounding cycle with
        # unit delays on the forward arcs (every hop costs one cycle).
        limit = "clock"
        ratio, arcs = critical_cycle_arcs(
            graph, {a.name: 1 for a in graph.arcs if forward(a)}
        )
    bound = min(ratio, Fraction(1))

    # Sources and sinks model the eager environment: they must not add
    # pipeline latency of their own (the env-closure arc already
    # carries the environment's token budget), so they evaluate
    # combinationally.  Registers keep the default one-cycle latency.
    comb = {b.name for b in spec.blocks.values() if b.latency is None}
    comb |= set(spec.sources) | set(spec.sinks)
    samplers = {
        b.name: b.latency
        for b in spec.blocks.values() if b.latency is not None
    }
    eager = {a.name for a in graph.arcs if a.name.startswith("~")}
    sim = TimedDMGSimulator(
        graph, latencies=samplers, guards=guards or {}, seed=seed,
        combinational=comb, eager_arcs=eager,
    )
    estimate = sim.run(cycles)
    predicted = estimate.throughput(graph.arc(reference).src)
    try:
        lazy = min(throughput_bound(spec, mean_latency), Fraction(1))
    except ValueError:
        # No latency-weighted cycle at all: the lazy system is
        # clock-limited too.
        lazy = Fraction(1)
    if predicted > 0:
        divergence = abs(measured - predicted) / predicted
    else:
        divergence = 0.0 if measured == 0 else math.inf
    finite = math.isfinite(divergence)
    return {
        "reference": reference,
        "critical_cycle": {
            "arcs": list(arcs),
            "ratio": _fraction(ratio),
            "throughput": _canon(float(bound)),
            "limit": limit,
        },
        "lazy_bound": _fraction(lazy),
        "predicted_throughput": _canon(predicted),
        "measured_throughput": _canon(measured),
        "divergence": _canon(divergence) if finite else "inf",
        "tolerance": _canon(tolerance),
        "within_tolerance": bool(finite and divergence <= tolerance),
        "beats_lazy_bound": bool(measured > float(lazy) + 1e-9),
    }


# ----------------------------------------------------------------------
# The performance report
# ----------------------------------------------------------------------
@dataclass
class PerformanceReport:
    """One profiled run, ready for JSON or human rendering."""

    design: str
    backend: str
    cycles: int
    seed: int
    channels: Dict[str, Dict[str, object]]
    conservation: Dict[str, object]
    attribution: Dict[str, object]
    ee: Optional[Dict[str, object]] = None
    model: Optional[Dict[str, object]] = None

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "design": self.design,
            "backend": self.backend,
            "cycles": self.cycles,
            "seed": self.seed,
            "channels": self.channels,
            "conservation": self.conservation,
            "attribution": self.attribution,
        }
        if self.ee is not None:
            out["ee"] = self.ee
        if self.model is not None:
            out["model"] = self.model
        return out

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def render(self) -> str:
        lines = [
            f"profile: {self.design} "
            f"({self.backend}, {self.cycles} cycles, seed {self.seed})",
            f"{'channel':16s} {'Th':>6s} "
            f"{'t+':>6s} {'t-':>6s} {'kill':>6s} "
            f"{'r+':>6s} {'r-':>6s} {'idle':>6s}",
        ]
        for name, entry in self.channels.items():
            lines.append(
                f"{name:16s} {entry['throughput']:>6} "
                f"{entry['transfer+']:>6d} {entry['transfer-']:>6d} "
                f"{entry['kill']:>6d} {entry['retry+']:>6d} "
                f"{entry['retry-']:>6d} {entry['idle']:>6d}"
            )
        cons = self.conservation
        lines.append(
            f"conservation: {cons['tokens_moved']} tokens, "
            f"{cons['anti_tokens_moved']} anti-tokens, "
            f"{cons['annihilated']} annihilated "
            f"({'OK' if cons['complete'] else 'RESIDUAL'})"
        )
        attr = self.attribution
        lines.append(f"backpressure: {attr['lost_cycles']} lost channel-cycles")
        for wire, entry in attr["sinks"].items():
            roots = ", ".join(
                f"{r} x{n}" for r, n in entry["roots"].items()
            )
            lines.append(f"  {wire}: {entry['lost']} lost (root: {roots})")
        for stall in attr["stalls"]:
            where = (
                " -> ".join(stall["stop_cycle"]) or
                (stall["blocked"][-1] if stall["blocked"] else "?")
            )
            lines.append(
                f"  stall at cycle {stall['cycle']}: {where}"
            )
        if self.ee is not None:
            for name, j in self.ee["joins"].items():
                lines.append(
                    f"ee[{name}]: {j['fires']} firings, {j['early']} early, "
                    f"{j['anti_tokens_generated']} anti-tokens generated"
                )
            lines.append(
                f"ee: {self.ee['anti_tokens_annihilated']} anti-tokens "
                f"annihilated"
            )
            replay = self.ee.get("late_replay")
            if replay is not None:
                lines.append(
                    f"ee: late replay ({replay['design']}) Th="
                    f"{replay['throughput']}; {replay['cycles_saved']} "
                    f"cycle(s) saved over {replay['tokens']} tokens"
                )
        if self.model is not None:
            m = self.model
            cc = m["critical_cycle"]
            verdict = "OK" if m["within_tolerance"] else "DIVERGED"
            lines.append(
                f"model: critical cycle [{' '.join(cc['arcs'])}] "
                f"ratio {cc['ratio']} ({cc['limit']}-limited)"
            )
            lines.append(
                f"model: predicted {m['predicted_throughput']} vs measured "
                f"{m['measured_throughput']} on {m['reference']} "
                f"(divergence {m['divergence']}, tolerance "
                f"{m['tolerance']}): {verdict}"
                + (" [beats lazy bound "
                   f"{m['lazy_bound']}]" if m["beats_lazy_bound"] else "")
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Design registry: mirrors, guards and references per profile design
# ----------------------------------------------------------------------
_RTL_REFERENCE = {
    "dual_ehb": "R", "dual_ehb_latches": "R", "join": "Z",
    "early_join": "Z", "fork": "O0", "passive": "D", "vl": "R",
}

_RTL_EE = {"early_join": {"output": "Z", "inputs": ["I0", "I1"]}}

#: late-evaluation replay twin of each early design
_RTL_LATE_TWIN = {"early_join": "join"}

_FIG9_CONFIGS = ("active", "no_buffer", "passive_f3w", "passive_m2w", "lazy")

_NETWORK_DESIGNS = ("pipeline", "processor") + _FIG9_CONFIGS

#: Fig. 9 mean VL latencies (E[M1] = .8*2 + .2*10, E[M2] = .5*1 + .5*2)
_FIG9_MEAN = {"M1": 3.6, "M2": 1.5}


def profile_designs() -> List[str]:
    """Every design name :func:`run_profile` accepts."""
    from repro.faults.targets import TARGETS

    return sorted(TARGETS) + sorted(_NETWORK_DESIGNS)


def _mirror_spec(design: str):
    """The SystemSpec mirror of one RTL campaign target.

    Connection names equal the RTL channel names, so the model section
    names arcs the profiled channels map onto directly.  Returns
    ``(spec, guards, mean_latency)`` for :func:`model_section`.
    """
    from repro.core.performance import fixed_latency, select_guard
    from repro.elastic.ee import ThresholdEE
    from repro.synthesis.spec import SystemSpec

    spec = SystemSpec(f"mirror[{design}]")
    guards: Dict[str, object] = {}
    mean: Dict[str, float] = {}
    if design in ("dual_ehb", "dual_ehb_latches"):
        spec.add_source("src")
        spec.add_sink("snk")
        spec.add_register("eb")
        spec.connect(spec.source("src"), spec.register_in("eb"), name="L")
        spec.connect(spec.register_out("eb"), spec.sink("snk"), name="R")
    elif design in ("join", "early_join"):
        spec.add_source("src0")
        spec.add_source("src1")
        spec.add_sink("snk")
        ee = ThresholdEE(1, 2) if design == "early_join" else None
        spec.add_block("j", n_inputs=2, ee=ee)
        spec.connect(spec.source("src0"), spec.block_in("j", 0), name="I0")
        spec.connect(spec.source("src1"), spec.block_in("j", 1), name="I1")
        spec.connect(spec.block_out("j"), spec.sink("snk"), name="Z")
        if design == "early_join":
            guards["j"] = select_guard({"I0": 0.5, "I1": 0.5})
    elif design == "fork":
        spec.add_source("src")
        spec.add_sink("snk0")
        spec.add_sink("snk1")
        spec.add_block("f", n_outputs=2)
        spec.connect(spec.source("src"), spec.block_in("f"), name="I")
        spec.connect(spec.block_out("f", 0), spec.sink("snk0"), name="O0")
        spec.connect(spec.block_out("f", 1), spec.sink("snk1"), name="O1")
    elif design == "passive":
        spec.add_source("src")
        spec.add_sink("snk")
        spec.add_block("p")
        spec.connect(spec.source("src"), spec.block_in("p"), name="U")
        spec.connect(spec.block_out("p"), spec.sink("snk"), name="D",
                     passive=True)
    elif design == "vl":
        spec.add_source("src")
        spec.add_sink("snk")
        spec.add_block("vl", latency=fixed_latency(2))
        spec.connect(spec.source("src"), spec.block_in("vl"), name="L")
        spec.connect(spec.block_out("vl"), spec.sink("snk"), name="R")
        mean["vl"] = 2.0
    else:  # pragma: no cover - registry and TARGETS move together
        raise ValueError(f"no mirror spec for {design!r}")
    return spec, guards, mean


def _fig9_guards(spec) -> Dict[str, object]:
    """The W multiplexer's firing guard: select plus one chosen operand."""
    from repro.core.performance import select_guard

    if not spec.blocks["W"].is_early:
        return {}
    inner = select_guard({"I->W": 0.6, "F3->W": 0.3, "M->W": 0.1})

    def w_guard(rng):
        return {"C->W"} | inner(rng)

    return {"W": w_guard}


# ----------------------------------------------------------------------
# Profile drivers
# ----------------------------------------------------------------------
def _eager_stimulus(free_inputs: Sequence[str]) -> Dict[str, int]:
    """The eager environment: always offer, never stall, never kill."""
    return {
        name: 1 if name.endswith(".choice") or name.endswith(".done") else 0
        for name in free_inputs
    }


def _run_rtl(target, cycles: int, backend: str, cache, ee):
    """Drive one RTL engine for ``cycles``; returns (profiler, stalls)."""
    from repro.resilience.watchdog import BatchStallWatchdog, RtlStallWatchdog

    profiler = RtlChannelProfiler(target, ee=ee)
    stimulus = _eager_stimulus(target.free_inputs)
    if backend == "scalar":
        from repro.rtl.simulator import TwoPhaseSimulator

        sim = TwoPhaseSimulator(target.netlist)
        profiler.attach_scalar(sim)
        watchdog = RtlStallWatchdog.for_target(
            target, sim, window=_WINDOW, raise_on_stall=False
        )
        for _ in range(cycles):
            sim.cycle(stimulus)
    elif backend in ("batch", "compiled"):
        from repro.rtl.batchsim import broadcast

        if backend == "batch":
            from repro.rtl.batchsim import BatchSimulator

            sim = BatchSimulator(target.netlist, lanes=1)
        else:
            from repro.codegen.sim import CompiledSimulator

            sim = CompiledSimulator(
                target.netlist, lanes=1, hooks=frozenset(),
                observe=frozenset(target.observe), cache=cache,
            )
        profiler.attach_lane(sim, 0)
        watchdog = BatchStallWatchdog.for_target(
            target, sim, window=_WINDOW, raise_on_stall=False
        )
        planes = {
            name: broadcast(value, 1) for name, value in stimulus.items()
        }
        for _ in range(cycles):
            sim.cycle(planes)
    else:
        raise ValueError(
            f"unknown backend {backend!r}; "
            "pick scalar, batch, compiled or auto"
        )
    return profiler, watchdog.diagnoses


def _profile_rtl(
    design: str, cycles: int, seed: int, backend: str,
    compare_model: bool, tolerance: float, cache,
) -> PerformanceReport:
    from repro.faults.targets import TARGETS

    target = TARGETS[design]()
    reference = _RTL_REFERENCE[design]
    ee_spec = _RTL_EE.get(design)
    profiler, diagnoses = _run_rtl(target, cycles, backend, cache, ee_spec)
    measured = profiler.throughput(reference)

    ee_section = None
    if ee_spec is not None:
        twin_name = _RTL_LATE_TWIN[design]
        twin, _ = _run_rtl(
            TARGETS[twin_name](), cycles, backend, cache, None
        )
        lazy_th = twin.throughput(_RTL_REFERENCE[twin_name])
        tokens = profiler.counts[reference]["transfer+"]
        ee_section = {
            "joins": {
                ee_spec["output"]: {
                    "fires": profiler.ee_fires,
                    "early": profiler.ee_early,
                    "anti_tokens_generated": profiler.ee_generated,
                },
            },
            "anti_tokens_annihilated": sum(
                c["kill"] for c in profiler.counts.values()
            ),
            "late_replay": _late_replay(twin_name, lazy_th, tokens, cycles),
        }

    model = None
    if compare_model:
        spec, guards, mean = _mirror_spec(design)
        model = model_section(
            spec, reference, measured, cycles, seed, tolerance,
            guards=guards, mean_latency=mean,
        )
    return PerformanceReport(
        design=design, backend=backend, cycles=cycles, seed=seed,
        channels=profiler.channel_section(),
        conservation=profiler.conservation_section(),
        attribution=profiler.attribution_section(diagnoses),
        ee=ee_section, model=model,
    )


def _late_replay(
    twin: str, lazy_th: float, tokens: int, cycles: int
) -> Dict[str, object]:
    """Cycles the early design saved over its late-evaluation twin."""
    if lazy_th > 0:
        saved = max(0, math.ceil(tokens / lazy_th) - cycles)
    else:
        saved = 0
    return {
        "design": twin,
        "throughput": _canon(lazy_th),
        "tokens": tokens,
        "cycles_saved": saved,
    }


def _pipeline_network(seed: int):
    """The deterministic Fig. 5 dual-EB chain (as ``repro trace``)."""
    from repro.elastic.behavioral import (
        ElasticBuffer,
        ElasticNetwork,
        Sink,
        Source,
    )

    net = ElasticNetwork("fig5")
    din = net.add_channel("Din")
    mid = net.add_channel("mid")
    dout = net.add_channel("Dout")
    net.add(Source("src", din))
    net.add(ElasticBuffer("EB0", din, mid, initial_tokens=1,
                          initial_data=["t0"]))
    net.add(ElasticBuffer("EB1", mid, dout))
    net.add(Sink("snk", dout))
    return net


def _pipeline_spec():
    from repro.synthesis.spec import SystemSpec

    spec = SystemSpec("mirror[pipeline]")
    spec.add_source("src")
    spec.add_sink("snk")
    spec.add_register("EB0", initial_tokens=1, initial_data=["t0"])
    spec.add_register("EB1")
    spec.connect(spec.source("src"), spec.register_in("EB0"), name="Din")
    spec.connect(spec.register_out("EB0"), spec.register_in("EB1"),
                 name="mid")
    spec.connect(spec.register_out("EB1"), spec.sink("snk"), name="Dout")
    return spec


def _profile_network(
    design: str, cycles: int, seed: int,
    compare_model: bool, tolerance: float,
) -> PerformanceReport:
    from repro.resilience.watchdog import NetworkStallWatchdog

    spec = None
    guards: Dict[str, object] = {}
    mean: Optional[Dict[str, float]] = None
    twin_builder = None
    if design == "pipeline":
        net = _pipeline_network(seed)
        reference = "Din"
        spec = _pipeline_spec()
    elif design == "processor":
        from repro.casestudy.processor import ProcessorConfig, build_processor

        net, _, _ = build_processor(ProcessorConfig(seed=seed))
        reference = "wb"
        if compare_model:
            raise ValueError(
                "the processor case study has no DMG abstraction; "
                "run it without --compare-model"
            )

        def twin_builder():
            twin, _, _ = build_processor(
                ProcessorConfig(seed=seed, early_writeback=False)
            )
            return twin
    else:
        from repro.casestudy.fig9 import Config, build_fig9_spec
        from repro.synthesis.elaborate import to_behavioral

        config = Config[design.upper()]
        spec = build_fig9_spec(config, seed=seed)
        net = to_behavioral(spec, seed=seed)
        reference = "Din->S"
        guards = _fig9_guards(spec)
        mean = _FIG9_MEAN
        if config is not Config.LAZY:

            def twin_builder():
                return to_behavioral(
                    build_fig9_spec(Config.LAZY, seed=seed), seed=seed
                )

    profiler = NetworkProfiler().attach(net)
    watchdog = NetworkStallWatchdog(
        window=_WINDOW, raise_on_stall=False
    ).attach(net)
    net.run(cycles)
    measured = net.throughput(reference)

    ee_section = None
    if profiler.joins:
        ee_section = {
            "joins": {
                name: {
                    "fires": tally["fires"],
                    "early": tally["early"],
                    "anti_tokens_generated": tally["generated"],
                }
                for name, tally in sorted(profiler.joins.items())
            },
            "anti_tokens_annihilated": sum(
                ch.stats.kills for ch in net.channels.values()
            ),
        }
        if twin_builder is not None:
            twin = twin_builder()
            twin.run(cycles)
            lazy_th = twin.throughput(reference)
            tokens = net.channels[reference].stats.positive
            twin_name = (
                "lazy" if design in _FIG9_CONFIGS else "in_order_writeback"
            )
            ee_section["late_replay"] = _late_replay(
                twin_name, lazy_th, tokens, cycles
            )

    model = None
    if compare_model:
        if spec is None:  # pragma: no cover - processor raised above
            raise ValueError(f"no model for {design!r}")
        model = model_section(
            spec, reference, measured, cycles, seed, tolerance,
            guards=guards, mean_latency=mean,
        )
    return PerformanceReport(
        design=design, backend="network", cycles=cycles, seed=seed,
        channels=profiler.channel_section(),
        conservation=profiler.conservation_section(),
        attribution=profiler.attribution_section(watchdog.diagnoses),
        ee=ee_section, model=model,
    )


def run_profile(
    design: str,
    cycles: int = 2000,
    seed: int = 2007,
    backend: str = "auto",
    compare_model: bool = False,
    tolerance: float = 0.15,
    cache=None,
) -> PerformanceReport:
    """Profile one design end to end; the ``repro profile`` entry point.

    ``design`` is an RTL campaign target (scalar/batch/compiled
    backends under the eager environment), a Fig. 9 configuration,
    ``pipeline`` (the Fig. 5 chain) or ``processor`` (both behavioural;
    the backend must stay ``auto``).  The report is byte-identical
    across repeated runs and across the three RTL backends.
    """
    if design in _NETWORK_DESIGNS:
        if backend not in ("auto", "network"):
            raise ValueError(
                f"design {design!r} runs on the behavioural network; "
                "drop the --backend override"
            )
        return _profile_network(
            design, cycles, seed, compare_model, tolerance
        )
    from repro.faults.targets import TARGETS

    if design not in TARGETS:
        raise ValueError(
            f"unknown design {design!r}; pick one of "
            f"{', '.join(profile_designs())}"
        )
    if backend == "auto":
        backend = "scalar"
    return _profile_rtl(
        design, cycles, seed, backend, compare_model, tolerance, cache
    )
