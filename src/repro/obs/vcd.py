"""VCD (Value Change Dump) export, viewable in GTKWave.

:class:`VcdWriter` is a small streaming writer for 1-bit wires: declare
wires (grouped into ``$scope module`` blocks), then feed monotonically
non-decreasing ``(time, wire, value)`` changes.  Values are ``0``,
``1`` or ``X`` (written as ``x``); every wire starts as ``x`` in
``$dumpvars`` so the first settled cycle paints the initial picture.

:class:`VcdSink` adapts the writer to the
:class:`~repro.obs.recorder.TraceRecorder` sink protocol: it consumes
``edge`` / ``x-onset`` events (subject = wire name) and ignores the
rest.  Subjects are split at their last ``.`` into (scope, wire), so a
dual channel ``C->W`` shows up in GTKWave as a module with its four
``{V+, S+, V-, S-}`` wires, and an RTL net ``eb.t0`` lands in scope
``eb``.
"""

from __future__ import annotations

import io
from typing import Dict, List, Optional, TextIO, Tuple, Union

from repro.obs.events import TraceEvent
from repro.rtl.logic import X

__all__ = ["VcdSink", "VcdWriter", "vcd_identifier"]

_ID_FIRST, _ID_LAST = 33, 126  # printable ASCII, the VCD id alphabet


def vcd_identifier(index: int) -> str:
    """The ``index``-th VCD identifier code (base-94, shortest first)."""
    span = _ID_LAST - _ID_FIRST + 1
    chars = [chr(_ID_FIRST + index % span)]
    index //= span
    while index:
        index -= 1
        chars.append(chr(_ID_FIRST + index % span))
        index //= span
    return "".join(reversed(chars))


def _sanitize(name: str) -> str:
    """A GTKWave-safe identifier: no whitespace or VCD metacharacters."""
    out = []
    for ch in name:
        out.append(ch if (ch.isalnum() or ch in "_.[]") else "_")
    return "".join(out) or "_"


class VcdWriter:
    """Streaming VCD writer for single-bit wires."""

    def __init__(self, handle: TextIO, timescale: str = "1 ns",
                 comment: str = "repro.obs trace"):
        self._handle = handle
        self._timescale = timescale
        self._comment = comment
        #: wire name -> (identifier code, scope)
        self._wires: Dict[str, Tuple[str, str]] = {}
        self._scopes: Dict[str, List[str]] = {}
        self._header_done = False
        self._time: Optional[int] = None

    def add_wire(self, name: str, scope: str = "top") -> str:
        """Declare a 1-bit wire; must precede the first change."""
        if self._header_done:
            raise RuntimeError("cannot declare wires after the header")
        if name in self._wires:
            return self._wires[name][0]
        code = vcd_identifier(len(self._wires))
        self._wires[name] = (code, scope)
        self._scopes.setdefault(scope, []).append(name)
        return code

    def write_header(self) -> None:
        """Emit the declaration section and the all-``x`` ``$dumpvars``."""
        if self._header_done:
            return
        w = self._handle.write
        w(f"$comment {self._comment} $end\n")
        w(f"$timescale {self._timescale} $end\n")
        for scope, names in self._scopes.items():
            w(f"$scope module {_sanitize(scope)} $end\n")
            for name in names:
                code, _ = self._wires[name]
                short = name[len(scope) + 1:] if name.startswith(scope + ".") else name
                w(f"$var wire 1 {code} {_sanitize(short)} $end\n")
            w("$upscope $end\n")
        w("$enddefinitions $end\n")
        w("$dumpvars\n")
        for name in self._wires:
            w(f"x{self._wires[name][0]}\n")
        w("$end\n")
        self._header_done = True

    def change(self, time: int, name: str, value: object) -> None:
        """Record ``name`` settling to ``value`` (0/1/X) at ``time``."""
        if not self._header_done:
            self.write_header()
        code, _ = self._wires[name]
        if self._time is None or time > self._time:
            self._handle.write(f"#{time}\n")
            self._time = time
        elif time < self._time:
            raise ValueError(f"time went backwards: {time} < {self._time}")
        bit = "x" if value is X or value == "x" else ("1" if value else "0")
        self._handle.write(f"{bit}{code}\n")

    def close(self, end_time: Optional[int] = None) -> None:
        """Finish the dump (writes the header even if nothing changed)."""
        if not self._header_done:
            self.write_header()
        if end_time is not None and (self._time is None or end_time > self._time):
            self._handle.write(f"#{end_time}\n")


class VcdSink:
    """A trace sink writing ``edge``/``x-onset`` events as a VCD file."""

    def __init__(self, target: Union[str, TextIO], timescale: str = "1 ns"):
        if isinstance(target, str):
            self._handle: TextIO = open(target, "w")
            self._owned = True
        else:
            self._handle = target
            self._owned = False
        self.writer = VcdWriter(self._handle, timescale=timescale)

    def declare_wire(self, subject: str) -> None:
        scope, _, _ = subject.rpartition(".")
        self.writer.add_wire(subject, scope=scope or "top")

    def emit(self, event: TraceEvent) -> None:
        if event.kind == "edge":
            self.writer.change(event.cycle, event.subject, event.value)
        elif event.kind == "x-onset":
            self.writer.change(event.cycle, event.subject, X)

    def close(self) -> None:
        self.writer.close()
        if self._owned:
            self._handle.close()
        elif not isinstance(self._handle, io.StringIO):
            self._handle.flush()
