"""repro.obs -- unified observability for every simulator in the repo.

Five pieces, usable separately or together:

* :class:`TraceRecorder` (:mod:`repro.obs.recorder`) -- cycle-stamped
  structured events from the behavioural network, the scalar RTL
  simulator and the word-parallel batch/compiled kernels, into a
  bounded ring buffer and pluggable sinks;
* exporters -- :class:`VcdSink` (GTKWave waveforms) and
  :class:`JsonlSink` (one JSON object per event);
* :class:`MetricsRegistry` (:mod:`repro.obs.metrics`) -- labeled
  counters / gauges / histograms with a deterministic snapshot API and
  a Prometheus text renderer;
* the **performance observatory** (:mod:`repro.obs.analyze`) --
  per-channel cycle accounting, backpressure root-cause attribution,
  critical-cycle analysis against the DMG model and early-evaluation
  benefit accounting, as one deterministic JSON report;
* profiling -- :class:`PhaseProfiler` wall-time accumulation and
  :class:`ProgressReporter` throttled progress lines.

The CLI surfaces this as ``repro trace`` (waveforms + event streams),
``repro stats`` (the metrics snapshot of a simulation, ``--prometheus``
for the exposition format), ``repro profile`` (the performance report)
and ``repro inject --metrics/--profile`` (campaign run metadata).
"""

from repro.obs.analyze import (
    NetworkProfiler,
    PerformanceReport,
    RtlChannelProfiler,
    classify_strict,
    profile_designs,
    run_profile,
)
from repro.obs.events import EVENT_KINDS, TraceEvent
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SummaryStats,
    summarize,
)
from repro.obs.profile import PhaseProfiler, ProgressReporter
from repro.obs.recorder import JsonlSink, TraceRecorder, collect_network_metrics
from repro.obs.vcd import VcdSink, VcdWriter

__all__ = [
    "EVENT_KINDS",
    "NetworkProfiler",
    "PerformanceReport",
    "RtlChannelProfiler",
    "TraceEvent",
    "classify_strict",
    "profile_designs",
    "run_profile",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SummaryStats",
    "summarize",
    "PhaseProfiler",
    "ProgressReporter",
    "JsonlSink",
    "TraceRecorder",
    "collect_network_metrics",
    "VcdSink",
    "VcdWriter",
]
