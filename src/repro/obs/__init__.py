"""repro.obs -- unified observability for every simulator in the repo.

Four pieces, usable separately or together:

* :class:`TraceRecorder` (:mod:`repro.obs.recorder`) -- cycle-stamped
  structured events from the behavioural network, the scalar RTL
  simulator and the 64-lane batch kernel, into a bounded ring buffer
  and pluggable sinks;
* exporters -- :class:`VcdSink` (GTKWave waveforms) and
  :class:`JsonlSink` (one JSON object per event);
* :class:`MetricsRegistry` (:mod:`repro.obs.metrics`) -- labeled
  counters / gauges / histograms with a deterministic snapshot API;
* profiling -- :class:`PhaseProfiler` wall-time accumulation and
  :class:`ProgressReporter` throttled progress lines.

The CLI surfaces this as ``repro trace`` (waveforms + event streams),
``repro stats`` (the metrics snapshot of a simulation) and
``repro inject --metrics`` (campaign run metadata).
"""

from repro.obs.events import EVENT_KINDS, TraceEvent
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SummaryStats,
    summarize,
)
from repro.obs.profile import PhaseProfiler, ProgressReporter
from repro.obs.recorder import JsonlSink, TraceRecorder, collect_network_metrics
from repro.obs.vcd import VcdSink, VcdWriter

__all__ = [
    "EVENT_KINDS",
    "TraceEvent",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SummaryStats",
    "summarize",
    "PhaseProfiler",
    "ProgressReporter",
    "JsonlSink",
    "TraceRecorder",
    "collect_network_metrics",
    "VcdSink",
    "VcdWriter",
]
