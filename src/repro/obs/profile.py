"""Profiling hooks: per-phase wall time and progress reporting.

:class:`PhaseProfiler` accumulates wall-clock seconds per named phase.
The batch kernel (:class:`~repro.rtl.batchsim.BatchSimulator`) accepts
one on its ``profile`` attribute and times its two compiled phase
programs; anything else can use :meth:`PhaseProfiler.phase` as a
context manager.  When constructed over a
:class:`~repro.obs.metrics.MetricsRegistry`, :meth:`snapshot` mirrors
the accumulated totals into ``phase_seconds{phase=...}`` gauges.

:class:`ProgressReporter` is a throttled callback for long builds --
Kripke-structure enumeration frontiers, fault-campaign chunk sweeps --
that prints at most one line every ``every`` reports.
"""

from __future__ import annotations

import sys
from contextlib import contextmanager
from time import perf_counter
from typing import Dict, Optional, TextIO

from repro.obs.metrics import MetricsRegistry

__all__ = ["PhaseProfiler", "ProgressReporter"]


class PhaseProfiler:
    """Wall-time accumulator per named phase."""

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry
        self.seconds: Dict[str, float] = {}
        self.calls: Dict[str, int] = {}

    def add(self, phase: str, seconds: float) -> None:
        self.seconds[phase] = self.seconds.get(phase, 0.0) + seconds
        self.calls[phase] = self.calls.get(phase, 0) + 1

    @contextmanager
    def phase(self, name: str):
        t0 = perf_counter()
        try:
            yield self
        finally:
            self.add(name, perf_counter() - t0)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        snap = {
            name: {
                "calls": self.calls[name],
                "seconds": round(self.seconds[name], 6),
            }
            for name in sorted(self.seconds)
        }
        if self.registry is not None:
            for name, entry in snap.items():
                gauge = self.registry.gauge("phase_seconds", phase=name)
                gauge.set(entry["seconds"])
        return snap

    def render(self) -> str:
        total = sum(self.seconds.values()) or 1.0
        lines = []
        for name in sorted(self.seconds, key=self.seconds.get, reverse=True):
            secs = self.seconds[name]
            lines.append(
                f"{name:24s} {secs:10.4f}s  {100.0 * secs / total:5.1f}%  "
                f"({self.calls[name]} calls)"
            )
        return "\n".join(lines)


class ProgressReporter:
    """Throttled progress lines for long-running builds and sweeps.

    Call it like a function -- ``reporter(done, total)`` -- from any
    loop; it prints at most every ``every``-th call (and always the
    first), so hooking it into a hot frontier costs almost nothing.
    """

    def __init__(self, label: str, every: int = 1000,
                 stream: Optional[TextIO] = None):
        self.label = label
        self.every = max(1, every)
        self.stream = stream if stream is not None else sys.stderr
        self.reports = 0
        self.last: Optional[str] = None

    def __call__(self, done: int, total: Optional[int] = None) -> None:
        self.reports += 1
        if self.reports != 1 and self.reports % self.every != 0:
            return
        if total:
            line = f"{self.label}: {done}/{total}"
        else:
            line = f"{self.label}: {done}"
        self.last = line
        self.stream.write(line + "\n")
