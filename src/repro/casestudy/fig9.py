"""The Fig. 9 example system.

Datapath (Fig. 9(a)): unit ``S`` reads ``Din`` and the loop feedback,
and sends data to units ``I``, ``F`` and ``M`` in parallel, plus control
data (the opcode) to register ``C``.  ``I`` and ``S`` are unpipelined;
``F`` has three pipeline stages (registers F1, F2, F3); ``M`` is two
variable-latency units M1, M2 delivering into a register; ``W`` is a
multiplexer selecting one result by opcode, with three output registers
feeding back to ``S``.  Selection probabilities: I 0.6, F 0.3, M 0.1.
M1 takes 2 cycles w.p. 0.8 and 10 w.p. 0.2; M2 takes 1 or 2 cycles with
probability 0.5 each.

Elastic conversion (Fig. 9(b)): every register becomes an EB; ``S``
gets a join (Din + feedback) and an eager fork; ``W`` gets an early
join (or a lazy join in the baseline) and an output fork; the two VL
units get variable-latency controllers.  Initially the three EBs at
the output of W hold tokens, every other EB a bubble.

The opcode is encoded on two control bits (s1, s2): ``00`` selects I,
``01`` selects F and ``1-`` selects M, giving the early-enabling
function of Sect. 6::

    EE = V+c & ((!s1 & !s2 & V+I) | (!s1 & s2 & V+F) | (s1 & V+M))
"""

from __future__ import annotations

import enum
import random
from typing import Dict, List, Optional, Sequence

from repro.core.performance import distribution_latency
from repro.elastic.ee import MuxEE
from repro.rtl.netlist import Netlist
from repro.synthesis.spec import SystemSpec

#: opcode selection probabilities (Sect. 6)
OPCODE_PROBABILITIES: Dict[str, float] = {"I": 0.6, "F": 0.3, "M": 0.1}

#: the five channels reported in Table 1
CHANNELS_REPORTED: List[str] = ["F2->F3", "F3->W", "S->M1", "M1->M2", "M2->W"]

#: EJ input order: C (select), I, F, M
_EJ_INPUTS = {"C": 0, "I": 1, "F": 2, "M": 3}


class Config(enum.Enum):
    """The five Table 1 configurations."""

    ACTIVE = "Active anti-tokens"
    NO_BUFFER = "No buffer (S->W)"
    PASSIVE_F3W = "Passive (F3->W)"
    PASSIVE_M2W = "Passive (M2->W)"
    LAZY = "No early evaluation"


def _opcode_chooser(op: object) -> int:
    """Map the select payload to the required EJ data input."""
    return _EJ_INPUTS[str(op)]


def _gate_ee(nl: Netlist, vps: Sequence[str], datas: Sequence[Sequence[str]]) -> str:
    """Gate-level EE of the W multiplexer over control bits (s1, s2)."""
    vc, vi, vf, vm = vps
    s1, s2 = datas[0]
    n_s1 = nl.NOT(s1)
    n_s2 = nl.NOT(s2)
    sel_i = nl.AND(n_s1, n_s2, vi)
    sel_f = nl.AND(n_s1, s2, vf)
    sel_m = nl.AND(s1, vm)
    return nl.AND(vc, nl.OR(sel_i, sel_f, sel_m))


def opcode_source(seed: int):
    """Data function drawing opcodes with the Sect. 6 probabilities."""
    rng = random.Random(seed)
    ops = list(OPCODE_PROBABILITIES)
    weights = [OPCODE_PROBABILITIES[o] for o in ops]

    def data_fn(n: int) -> str:
        return rng.choices(ops, weights=weights, k=1)[0]

    return data_fn


def build_fig9_spec(config: Config = Config.ACTIVE, seed: int = 0) -> SystemSpec:
    """Build the Fig. 9 system in the given Table 1 configuration.

    The payload flowing through the system is the opcode string itself
    (the datapath values are irrelevant to control behaviour); the EJ
    select channel carries the same opcode, so simulation can check
    that W always delivers the operand the opcode selected.
    """
    spec = SystemSpec(f"fig9[{config.name.lower()}]")

    spec.add_source("Din", data_fn=opcode_source(seed * 1009 + 7))
    spec.add_sink("Dout")

    # S: join(Din, feedback), fork to I / F / M / C.  The opcode of the
    # new operation is taken from Din; every branch carries it.
    spec.add_block(
        "S",
        n_inputs=2,
        n_outputs=4,
        func=lambda ops: ops[0],  # the opcode from Din
    )
    # I: unpipelined unit; its output register.
    spec.add_block("I")
    spec.add_register("EB_I")
    # F: three pipeline stages.
    for reg in ("EB_F1", "EB_F2", "EB_F3"):
        spec.add_register(reg)
    # M: input buffer, two VL units, output register.
    spec.add_register("EB_M0")
    spec.add_block("M1", latency=distribution_latency({2: 0.8, 10: 0.2}))
    spec.add_block("M2", latency=distribution_latency({1: 0.5, 2: 0.5}))
    spec.add_register("EB_M")
    # C: the control buffer on the S -> W channel (dropped in NO_BUFFER).
    has_c = config is not Config.NO_BUFFER
    if has_c:
        spec.add_register("EB_C")
    # W: the multiplexer -- early join unless the lazy baseline.
    early = config is not Config.LAZY
    spec.add_block(
        "W",
        n_inputs=4,
        n_outputs=2,
        ee=MuxEE(select=0, chooser=_opcode_chooser, arity=4) if early else None,
        gate_ee=_gate_ee if early else None,
        g_inputs=[False, True, True, True] if early else None,
        func=None if early else (lambda ops: ops[_opcode_chooser(ops[0])]),
    )
    # The three EBs at the output of W, initially full.
    for reg in ("EB_W1", "EB_W2", "EB_W3"):
        spec.add_register(reg, initial_tokens=1, initial_data=["I"])

    # ------------------------------------------------------------------
    # Connections (channel names follow Table 1 where applicable).
    # ------------------------------------------------------------------
    spec.connect(spec.source("Din"), spec.block_in("S", 0), name="Din->S")
    spec.connect(spec.register_out("EB_W3"), spec.block_in("S", 1), name="fb->S")

    spec.connect(spec.block_out("S", 0), spec.block_in("I"), name="S->I")
    spec.connect(spec.block_out("S", 1), spec.register_in("EB_F1"), name="S->F1")
    spec.connect(spec.block_out("S", 2), spec.register_in("EB_M0"), name="S->M0")
    if has_c:
        spec.connect(spec.block_out("S", 3), spec.register_in("EB_C"), name="S->C", data_bits=2)
        spec.connect(spec.register_out("EB_C"), spec.block_in("W", 0), name="C->W", data_bits=2)
    else:
        spec.connect(spec.block_out("S", 3), spec.block_in("W", 0), name="C->W", data_bits=2)

    spec.connect(spec.block_out("I"), spec.register_in("EB_I"), name="I->EBI")
    spec.connect(spec.register_out("EB_I"), spec.block_in("W", 1), name="I->W")

    spec.connect(spec.register_out("EB_F1"), spec.register_in("EB_F2"), name="F1->F2")
    spec.connect(spec.register_out("EB_F2"), spec.register_in("EB_F3"), name="F2->F3")
    spec.connect(
        spec.register_out("EB_F3"),
        spec.block_in("W", 2),
        name="F3->W",
        passive=config is Config.PASSIVE_F3W,
    )

    spec.connect(spec.register_out("EB_M0"), spec.block_in("M1"), name="S->M1")
    spec.connect(spec.block_out("M1"), spec.block_in("M2"), name="M1->M2")
    spec.connect(
        spec.block_out("M2"),
        spec.register_in("EB_M"),
        name="M2->W",
        passive=config is Config.PASSIVE_M2W,
    )
    spec.connect(spec.register_out("EB_M"), spec.block_in("W", 3), name="M->W")

    spec.connect(spec.block_out("W", 0), spec.sink("Dout"), name="W->Dout")
    spec.connect(spec.block_out("W", 1), spec.register_in("EB_W1"), name="W->fb")
    spec.connect(spec.register_out("EB_W1"), spec.register_in("EB_W2"), name="W1->W2")
    spec.connect(spec.register_out("EB_W2"), spec.register_in("EB_W3"), name="W2->W3")

    spec.validate()
    return spec
