"""The paper's case study (Sect. 6): the Fig. 9 system and Table 1.

* :mod:`repro.casestudy.fig9` -- builds the five-unit system
  (S, I, F, M, W plus the control register C) as a
  :class:`~repro.synthesis.spec.SystemSpec`, in any of the five
  Table 1 configurations.
* :mod:`repro.casestudy.table1` -- runs the 10K-cycle simulations and
  the area pipeline, and renders the Table 1 reproduction.
"""

from repro.casestudy.fig9 import (
    CHANNELS_REPORTED,
    Config,
    OPCODE_PROBABILITIES,
    build_fig9_spec,
)
from repro.casestudy.table1 import Table1Row, run_config, run_table1, format_table

__all__ = [
    "CHANNELS_REPORTED",
    "Config",
    "OPCODE_PROBABILITIES",
    "build_fig9_spec",
    "Table1Row",
    "run_config",
    "run_table1",
    "format_table",
]
