"""An elastic processor pipeline: the paper's machinery end-to-end.

A five-stage in-order pipeline built entirely from the paper's
controllers, exercising every mechanism at once:

* **elasticity** -- every stage boundary is an elastic buffer, so the
  pipeline tolerates variable memory/multiplier latencies without a
  global stall network;
* **variable latency** -- the multiplier (fast/slow) and the memory
  unit (cache hit/miss) are VL controllers (Fig. 7(b));
* **early evaluation** -- writeback selects the executing unit's result
  by opcode with an early join (Fig. 6(c)): an ALU instruction does not
  wait for the multiplier pipeline, anti-tokens cancel (or preempt) the
  unused units' work;
* **exception handling by counterflow** (Sect. 7) -- on a branch
  misprediction the commit unit injects one anti-token per wrong-path
  instruction in flight; the anti-tokens annihilate them wherever they
  are.  FIFO annihilation order guarantees exactly the wrong-path
  instructions die.

The instruction stream, opcode mix and misprediction rate are
configurable; :func:`build_processor` returns the network plus handles
for measurement (IPC, flush counts, committed trace).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.core.performance import distribution_latency
from repro.elastic.behavioral import (
    EarlyJoin,
    ElasticBuffer,
    ElasticNetwork,
    Join,
    Pipe,
    Sink,
    Source,
    VariableLatency,
)
from repro.elastic.channel import Channel
from repro.elastic.ee import MuxEE
from repro.rtl.logic import lnot


@dataclass(frozen=True)
class Instruction:
    """One architectural instruction."""

    seq: int
    epoch: int
    op: str  # "alu" | "mul" | "mem"
    is_branch: bool = False
    mispredicted: bool = False


@dataclass
class ProcessorConfig:
    """Workload and micro-architecture knobs."""

    op_mix: Dict[str, float] = field(
        default_factory=lambda: {"alu": 0.7, "mul": 0.2, "mem": 0.1}
    )
    p_branch: float = 0.15
    p_mispredict: float = 0.25  # per branch
    mul_latency: Dict[int, float] = field(
        default_factory=lambda: {3: 0.8, 12: 0.2}
    )
    mem_latency: Dict[int, float] = field(
        default_factory=lambda: {1: 0.7, 8: 0.3}
    )
    early_writeback: bool = True
    seed: int = 0


class FetchUnit(Source):
    """Speculative fetch: streams instructions, restarts on redirect."""

    def __init__(self, name: str, output: Channel, config: ProcessorConfig):
        self.config = config
        self._rng = random.Random(config.seed * 7919 + 1)
        self.epoch = 0
        self.fetched_in_epoch = 0
        super().__init__(name, output, data_fn=self._make_instruction)

    def _make_instruction(self, seq: int) -> Instruction:
        cfg = self.config
        ops = list(cfg.op_mix)
        op = self._rng.choices(ops, weights=[cfg.op_mix[o] for o in ops], k=1)[0]
        is_branch = self._rng.random() < cfg.p_branch
        mispredicted = is_branch and self._rng.random() < cfg.p_mispredict
        self.fetched_in_epoch += 1
        return Instruction(seq, self.epoch, op, is_branch, mispredicted)

    def redirect(self) -> None:
        """Branch misprediction: abandon the wrong path, new epoch.

        The currently offered (retried) instruction, if any, belongs to
        the wrong path too; it stays offered (SELF persistence) and is
        annihilated by an incoming anti-token like the rest.
        """
        self.epoch += 1
        self.fetched_in_epoch = 0


class CommitUnit(Sink):
    """In-order commit with anti-token pipeline flushing."""

    def __init__(self, name: str, input: Channel, fetch: FetchUnit):
        super().__init__(name, input)
        self.fetch = fetch
        self.committed: List[Instruction] = []
        self.flushes = 0
        self.wrong_path_killed = 0
        self.anti_budget = 0
        self.in_flight_guess = 0

    def evaluate(self):
        ch = self.input
        if self._action is None:
            if self.pending_anti or self.anti_budget > 0:
                self._action = "kill"
            else:
                self._action = "accept"
        changed = ch.drive_vn(1 if self._action == "kill" else 0)
        changed |= ch.drive_sp(0)
        return changed

    def commit(self):
        ch = self.input
        if self._action == "kill":
            if ch.kill or ch.neg_transfer:
                self.anti_budget -= 1
                self.wrong_path_killed += 1
                self.pending_anti = False
            else:
                self.pending_anti = True
        elif ch.pos_transfer:
            instr: Instruction = ch.data
            assert instr.epoch == self.fetch.epoch, (
                "wrong-path instruction escaped the flush"
            )
            self.committed.append(instr)
            if instr.is_branch and instr.mispredicted:
                # Everything currently in flight is wrong-path: one
                # anti-token per fetched-but-not-yet-committed
                # instruction of this epoch.  Kills never consume
                # current-epoch instructions (each flush's anti-tokens
                # hunt the *previous* epoch's leftovers), so in-flight
                # is simply fetched minus committed.
                commits_of_epoch = sum(
                    1 for i in self.committed if i.epoch == instr.epoch
                )
                stale = self.fetch.fetched_in_epoch - commits_of_epoch
                self.flushes += 1
                self.anti_budget = stale
                self.fetch.redirect()
        self._action = None


def build_processor(
    config: Optional[ProcessorConfig] = None,
) -> Tuple[ElasticNetwork, FetchUnit, CommitUnit]:
    """Assemble the elastic pipeline; returns (network, fetch, commit)."""
    cfg = config or ProcessorConfig()
    net = ElasticNetwork("elastic-cpu")

    ch = {
        name: net.add_channel(name, check_data=False)
        for name in (
            "fetch", "if_id", "id", "disp",
            "sel", "sel_q",
            "alu_in", "alu_out", "alu_q",
            "mul_in", "mul_q0", "mul_out", "mul_q",
            "mem_in", "mem_q0", "mem_out", "mem_q",
            "wb", "wb_q",
        )
    }

    fetch = FetchUnit("fetch", ch["fetch"], cfg)
    net.add(fetch)
    net.add(ElasticBuffer("EB_IF", ch["fetch"], ch["if_id"]))
    net.add(Pipe("decode", ch["if_id"], ch["id"]))
    net.add(ElasticBuffer("EB_ID", ch["id"], ch["disp"]))

    # Dispatch: broadcast to the select channel and all three units.
    from repro.elastic.behavioral import EagerFork

    net.add(
        EagerFork(
            "dispatch",
            ch["disp"],
            [ch["sel"], ch["alu_in"], ch["mul_in"], ch["mem_in"]],
        )
    )
    net.add(ElasticBuffer("EB_SEL", ch["sel"], ch["sel_q"]))

    # ALU: single-cycle (just its output register).
    net.add(Pipe("alu", ch["alu_in"], ch["alu_out"]))
    net.add(ElasticBuffer("EB_ALU", ch["alu_out"], ch["alu_q"]))

    # MUL: buffered variable-latency unit.
    net.add(ElasticBuffer("EB_MUL0", ch["mul_in"], ch["mul_q0"]))
    net.add(
        VariableLatency(
            "mul", ch["mul_q0"], ch["mul_out"],
            latency=distribution_latency(cfg.mul_latency),
            rng=random.Random(cfg.seed * 31 + 3),
        )
    )
    net.add(ElasticBuffer("EB_MUL", ch["mul_out"], ch["mul_q"]))

    # MEM: buffered variable-latency unit (cache hit/miss).
    net.add(ElasticBuffer("EB_MEM0", ch["mem_in"], ch["mem_q0"]))
    net.add(
        VariableLatency(
            "mem", ch["mem_q0"], ch["mem_out"],
            latency=distribution_latency(cfg.mem_latency),
            rng=random.Random(cfg.seed * 31 + 4),
        )
    )
    net.add(ElasticBuffer("EB_MEM", ch["mem_out"], ch["mem_q"]))

    # Writeback: select the executing unit's result by opcode.
    unit_of = {"alu": 1, "mul": 2, "mem": 3}

    def chooser(instr: Instruction) -> int:
        return unit_of[instr.op]

    wb_inputs = [ch["sel_q"], ch["alu_q"], ch["mul_q"], ch["mem_q"]]
    if cfg.early_writeback:
        ee = MuxEE(select=0, chooser=chooser, arity=4)
        net.add(EarlyJoin("writeback", wb_inputs, ch["wb"], ee))
    else:
        net.add(
            Join(
                "writeback", wb_inputs, ch["wb"],
                combine=lambda xs: xs[unit_of[xs[0].op]],
            )
        )
    net.add(ElasticBuffer("EB_WB", ch["wb"], ch["wb_q"]))

    commit = CommitUnit("commit", ch["wb_q"], fetch)
    net.add(commit)
    return net, fetch, commit


@dataclass
class ProcessorReport:
    """Measurement summary of a processor run."""

    cycles: int
    committed: int
    ipc: float
    flushes: int
    wrong_path_killed: int

    def __str__(self) -> str:
        return (
            f"{self.cycles} cycles: {self.committed} committed "
            f"(IPC {self.ipc:.3f}), {self.flushes} flushes, "
            f"{self.wrong_path_killed} wrong-path instructions annihilated"
        )


def run_processor(
    config: Optional[ProcessorConfig] = None, cycles: int = 5000
) -> Tuple[ProcessorReport, CommitUnit]:
    """Build, run, and summarise."""
    net, fetch, commit = build_processor(config)
    net.run(cycles)
    report = ProcessorReport(
        cycles=cycles,
        committed=len(commit.committed),
        ipc=len(commit.committed) / cycles,
        flushes=commit.flushes,
        wrong_path_killed=commit.wrong_path_killed,
    )
    return report, commit
