"""Table 1 reproduction: throughput and area of five configurations.

For each configuration the 10K-cycle behavioural simulation yields the
system throughput (transfers per cycle at the environment interfaces)
and the positive / negative / kill rates of the five reported channels;
the gate-level elaboration plus the constant-propagation area pipeline
yields the literal / latch / flip-flop counts of the control layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.casestudy.fig9 import CHANNELS_REPORTED, Config, build_fig9_spec
from repro.rtl.area import AreaReport
from repro.synthesis.elaborate import control_layer_area, to_behavioral


@dataclass
class Table1Row:
    """One line of Table 1."""

    config: Config
    throughput: float
    channel_rates: Dict[str, Dict[str, float]]
    area: AreaReport

    def cells(self) -> List[str]:
        out = [self.config.value, f"{self.throughput:.3f}"]
        for name in CHANNELS_REPORTED:
            rates = self.channel_rates[name]
            out.append(f"{rates['+']:.3f}")
            out.append(f"{rates['±']:.3f}")
            out.append(f"{rates['-']:.3f}")
        out.extend(
            [str(self.area.literals), str(self.area.latches), str(self.area.flops)]
        )
        return out


def run_config(
    config: Config,
    cycles: int = 10_000,
    seed: int = 0,
    with_area: bool = True,
) -> Table1Row:
    """Simulate one configuration for ``cycles`` cycles and measure area.

    Channel monitors are kept on (they assert SELF persistence and the
    invariants of equation (2) on every channel, every cycle -- the
    simulation doubles as a runtime verification run).
    """
    spec = build_fig9_spec(config, seed=seed)
    net = to_behavioral(spec, seed=seed)
    net.run(cycles)

    throughput = net.throughput("Din->S")
    rates: Dict[str, Dict[str, float]] = {}
    for name in CHANNELS_REPORTED:
        rates[name] = net.channels[name].stats.rates()
    area = control_layer_area(spec) if with_area else AreaReport(0, 0, 0, 0)
    return Table1Row(
        config=config, throughput=throughput, channel_rates=rates, area=area
    )


def run_table1(
    cycles: int = 10_000,
    seed: int = 0,
    configs: Optional[List[Config]] = None,
) -> List[Table1Row]:
    """Run all (or selected) Table 1 configurations."""
    configs = configs if configs is not None else list(Config)
    return [run_config(c, cycles=cycles, seed=seed) for c in configs]


def format_table(rows: List[Table1Row]) -> str:
    """Render rows in the layout of Table 1."""
    header = ["Configuration", "Th"]
    for name in CHANNELS_REPORTED:
        header.extend([f"{name} +", "±", "-"])
    header.extend(["lit", "lat", "ff"])
    table = [header] + [row.cells() for row in rows]
    widths = [max(len(r[i]) for r in table) for i in range(len(header))]
    lines = []
    for r in table:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(r, widths)))
    return "\n".join(lines)
