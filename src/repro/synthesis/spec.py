"""Declarative description of a synchronous system to be elasticized.

A :class:`SystemSpec` lists sources, sinks, functional blocks and
registers, wired by named point-to-point connections.  Endpoints are
``(kind, name, port)`` tuples created through the helper methods; each
port must be connected exactly once (:meth:`SystemSpec.validate`).

The spec captures the designer-facing choices of Sect. 6:

* which joins evaluate early (``BlockSpec.ee`` / ``gate_ee``);
* which units have variable latency (``BlockSpec.latency``);
* which channels use passive anti-token interfaces
  (``Connection.passive``);
* where buffers (registers) sit and how many initial tokens they hold.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.elastic.ee import EarlyEvalFunction
from repro.elastic.gates import GateEE

Endpoint = Tuple[str, str, str]  # (kind, name, port)


@dataclass
class SourceSpec:
    """An environment producer (``{V+, S+}`` interface only)."""

    name: str
    p_valid: float = 1.0
    data_fn: Optional[Callable[[int], object]] = None


@dataclass
class SinkSpec:
    """An environment consumer; may stall or kill for verification runs."""

    name: str
    p_stop: float = 0.0
    p_kill: float = 0.0


@dataclass
class BlockSpec:
    """A functional unit.

    Attributes:
        n_inputs / n_outputs: port counts; a join is emitted for more
            than one input, an eager fork for more than one output.
        func: data function.  For multi-input blocks it receives the
            list of operand payloads; for single-input blocks the
            payload itself.
        ee / gate_ee: early-evaluation function (behavioural and gate
            level); when set, the block's join evaluates early.
        g_inputs: which inputs get anti-token generation (G gates) at
            the gate level; inputs whose validity is implied by the EE
            function (e.g. a mux select) may safely be excluded, which
            is what lets logic synthesis drop their pending flip-flops.
        latency: latency sampler; when set the block is a
            variable-latency unit (must be 1-input, 1-output).
        branch_data: per-output payload selector for forks,
            ``(branch_index, payload) -> payload``.
    """

    name: str
    n_inputs: int = 1
    n_outputs: int = 1
    func: Optional[Callable] = None
    ee: Optional[EarlyEvalFunction] = None
    gate_ee: Optional[GateEE] = None
    g_inputs: Optional[Sequence[bool]] = None
    latency: Optional[Callable[[random.Random], int]] = None
    branch_data: Optional[Callable[[int, object], object]] = None

    def __post_init__(self) -> None:
        if self.latency is not None and (self.n_inputs != 1 or self.n_outputs != 1):
            raise ValueError(
                f"{self.name}: variable-latency blocks must be 1-in/1-out"
            )
        if self.ee is not None and self.ee.arity != self.n_inputs:
            raise ValueError(f"{self.name}: EE arity != n_inputs")

    @property
    def is_early(self) -> bool:
        return self.ee is not None


@dataclass
class RegisterSpec:
    """A datapath register -> one EB controller.

    ``capacity`` is the token capacity of the buffer (2 = the paper's
    dual EB of two EHBs, the only size the gate-level backend emits).
    Undersized buffers are legal to *declare* -- the lint pass and
    :func:`~repro.synthesis.flow.elasticize` reject the configurations
    that deadlock (a full capacity-1 loop has no bubble to move into).
    """

    name: str
    initial_tokens: int = 0
    initial_data: Optional[Sequence[object]] = None
    capacity: int = 2


@dataclass
class Connection:
    """A point-to-point channel between two endpoints."""

    name: str
    src: Endpoint
    dst: Endpoint
    passive: bool = False
    data_bits: int = 0  # gate-level data wires bundled with the channel


class SystemSpec:
    """A system description consumed by the elasticization flow."""

    def __init__(self, name: str):
        self.name = name
        self.sources: Dict[str, SourceSpec] = {}
        self.sinks: Dict[str, SinkSpec] = {}
        self.blocks: Dict[str, BlockSpec] = {}
        self.registers: Dict[str, RegisterSpec] = {}
        self.connections: List[Connection] = []

    # -- declaration helpers --------------------------------------------
    def add_source(self, name: str, **kwargs) -> SourceSpec:
        return self._register(self.sources, SourceSpec(name, **kwargs))

    def add_sink(self, name: str, **kwargs) -> SinkSpec:
        return self._register(self.sinks, SinkSpec(name, **kwargs))

    def add_block(self, name: str, **kwargs) -> BlockSpec:
        return self._register(self.blocks, BlockSpec(name, **kwargs))

    def add_register(self, name: str, **kwargs) -> RegisterSpec:
        return self._register(self.registers, RegisterSpec(name, **kwargs))

    def _register(self, table: Dict[str, object], item):
        if item.name in table:
            raise ValueError(f"duplicate {type(item).__name__} {item.name!r}")
        table[item.name] = item
        return item

    # -- endpoints -------------------------------------------------------
    def source(self, name: str) -> Endpoint:
        return ("source", name, "out")

    def sink(self, name: str) -> Endpoint:
        return ("sink", name, "in")

    def block_in(self, name: str, port: int = 0) -> Endpoint:
        return ("block", name, f"in{port}")

    def block_out(self, name: str, port: int = 0) -> Endpoint:
        return ("block", name, f"out{port}")

    def register_in(self, name: str) -> Endpoint:
        return ("register", name, "in")

    def register_out(self, name: str) -> Endpoint:
        return ("register", name, "out")

    def connect(
        self,
        src: Endpoint,
        dst: Endpoint,
        name: Optional[str] = None,
        passive: bool = False,
        data_bits: int = 0,
    ) -> Connection:
        """Wire two endpoints; channel name defaults to ``src->dst``."""
        if name is None:
            name = f"{src[1]}->{dst[1]}"
            existing = {c.name for c in self.connections}
            suffix = 1
            base = name
            while name in existing:
                suffix += 1
                name = f"{base}#{suffix}"
        if name in {c.name for c in self.connections}:
            raise ValueError(f"duplicate connection name {name!r}")
        conn = Connection(name, src, dst, passive=passive, data_bits=data_bits)
        self.connections.append(conn)
        return conn

    def connection(self, name: str) -> Connection:
        for conn in self.connections:
            if conn.name == name:
                return conn
        raise KeyError(name)

    # -- validation --------------------------------------------------------
    def _expected_ports(self) -> Dict[Endpoint, str]:
        ports: Dict[Endpoint, str] = {}
        for s in self.sources.values():
            ports[("source", s.name, "out")] = "src"
        for s in self.sinks.values():
            ports[("sink", s.name, "in")] = "dst"
        for b in self.blocks.values():
            for i in range(b.n_inputs):
                ports[("block", b.name, f"in{i}")] = "dst"
            for i in range(b.n_outputs):
                ports[("block", b.name, f"out{i}")] = "src"
        for r in self.registers.values():
            ports[("register", r.name, "in")] = "dst"
            ports[("register", r.name, "out")] = "src"
        return ports

    def validate(self) -> None:
        """Check every port is connected exactly once with correct roles."""
        ports = self._expected_ports()
        used: Dict[Endpoint, int] = {p: 0 for p in ports}
        for conn in self.connections:
            for endpoint, role in ((conn.src, "src"), (conn.dst, "dst")):
                if endpoint not in ports:
                    raise ValueError(f"{conn.name}: unknown endpoint {endpoint}")
                if ports[endpoint] != role:
                    raise ValueError(
                        f"{conn.name}: endpoint {endpoint} used as {role}, "
                        f"declared as {ports[endpoint]}"
                    )
                used[endpoint] += 1
        unconnected = [p for p, n in used.items() if n == 0]
        duplicated = [p for p, n in used.items() if n > 1]
        if unconnected:
            raise ValueError(f"unconnected ports: {unconnected}")
        if duplicated:
            raise ValueError(f"multiply connected ports: {duplicated}")
