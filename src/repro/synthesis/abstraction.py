"""DMG abstraction of an elastic system (Sect. 2 meets Sect. 6).

A system specification abstracts to a dual marked graph: blocks,
sources, sinks and registers become nodes; each connection becomes a
forward arc (carrying the register's initial tokens where applicable)
plus a backward arc carrying the spare capacity.  Early-evaluation
blocks become early-enabling nodes.

The abstraction serves two purposes:

* :func:`throughput_bound` -- the classical minimum-cycle-ratio bound
  of the *lazy* system (Sect. 2.2's repetitive behaviour makes it a
  genuine upper bound for conventional enabling; early evaluation may
  beat it, which is the whole point of the paper);
* structural liveness checking before elaboration: a spec whose DMG has
  a token-free cycle will deadlock.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Dict, Optional, Tuple

from repro.core.analysis import is_live, max_throughput_arcs
from repro.core.dmg import DualMarkedGraph
from repro.synthesis.spec import SystemSpec


def spec_to_dmg(
    spec: SystemSpec,
    mean_latency: Optional[Dict[str, float]] = None,
) -> Tuple[DualMarkedGraph, Dict[str, int]]:
    """Abstract ``spec`` into a DMG plus per-node latencies.

    Registers get latency 1 (one EB = one pipeline stage); blocks get
    latency 0 (combinational) unless variable-latency, in which case
    ``mean_latency[name]`` (rounded up, default 2) is used.  Sinks are
    connected back to sources with a high-capacity environment arc so
    the graph is strongly connected, as the paper assumes.

    For throughput bounds the node latencies are placed on the
    *forward* arcs leaving each node; backward (capacity) arcs carry
    zero delay, because an elastic stage's slot frees when its consumer
    initiates.

    Returns:
        ``(dmg, latencies)`` ready for :func:`throughput_bound`.
    """
    spec.validate()
    g = DualMarkedGraph()
    latencies: Dict[str, int] = {}

    for s in spec.sources.values():
        g.add_node(s.name)
        latencies[s.name] = 0
    for s in spec.sinks.values():
        g.add_node(s.name)
        latencies[s.name] = 0
    for r in spec.registers.values():
        g.add_node(r.name)
        latencies[r.name] = 1
    for b in spec.blocks.values():
        g.add_node(b.name)
        if b.latency is not None:
            mean = (mean_latency or {}).get(b.name, 2.0)
            latencies[b.name] = max(1, int(round(mean)))
        else:
            latencies[b.name] = 0
        if b.is_early:
            g.mark_early(b.name)

    for conn in spec.connections:
        src = conn.src[1]
        dst = conn.dst[1]
        tokens = 0
        if conn.src[0] == "register":
            tokens = spec.registers[src].initial_tokens
        g.add_arc(src, dst, tokens=tokens, name=conn.name)
        # Spare capacity: an EB holds ``capacity`` tokens; a direct
        # channel one in-flight handshake slot.
        capacity = (
            spec.registers[src].capacity if conn.src[0] == "register" else 1
        )
        g.add_arc(dst, src, tokens=capacity - tokens, name=f"~{conn.name}")

    # Close the environment: every sink feeds every source through a
    # well-provisioned arc (the paper's environment abstraction).
    env_capacity = 2 * max(1, len(spec.registers))
    for snk in spec.sinks.values():
        for src in spec.sources.values():
            g.add_arc(snk.name, src.name, tokens=env_capacity,
                      name=f"env:{snk.name}->{src.name}")
            g.add_arc(src.name, snk.name, tokens=0,
                      name=f"~env:{snk.name}->{src.name}")
    return g, latencies


def throughput_bound(
    spec: SystemSpec,
    mean_latency: Optional[Dict[str, float]] = None,
) -> Fraction:
    """Minimum-cycle-ratio throughput bound of the lazy system.

    Delays live on forward arcs (the producing node's latency); the
    environment closure and backward capacity arcs are free.
    """
    g, lat = spec_to_dmg(spec, mean_latency)
    arc_delay: Dict[str, int] = {}
    for arc in g.arcs:
        if arc.name.startswith("~") or arc.name.startswith("env:"):
            continue
        arc_delay[arc.name] = lat.get(arc.src, 0)
    return max_throughput_arcs(g, arc_delay)


def check_liveness(spec: SystemSpec) -> bool:
    """Structural deadlock check: every cycle of the DMG holds a token.

    Raises ``ValueError`` if the abstraction is not strongly connected
    (a dangling sub-system that can never interact with the
    environment); returns the liveness verdict otherwise.
    """
    g, _ = spec_to_dmg(spec)
    return is_live(g)
