"""Graphviz (DOT) export of system specifications.

Draws the elastic control layer in the style of Fig. 9(b): EB
controllers as boxes, joins/early joins/forks as bars, variable-latency
controllers with their go/done/ack annotation, solid arcs for the
positive sub-channels and (on request) dashed red arcs for the negative
counterflow of channels that carry anti-tokens.
"""

from __future__ import annotations

from typing import Set

from repro.synthesis.spec import SystemSpec


def _endpoint_node(spec: SystemSpec, endpoint) -> str:
    kind, name, _port = endpoint
    return name


def spec_to_dot(spec: SystemSpec, show_counterflow: bool = True) -> str:
    """Render the spec's control structure as a DOT digraph."""
    lines = [f'digraph "{spec.name}" {{', "  rankdir=LR;"]
    for s in spec.sources.values():
        lines.append(f'  "{s.name}" [shape=cds, label="{s.name} (src)"];')
    for s in spec.sinks.values():
        lines.append(f'  "{s.name}" [shape=cds, label="{s.name} (sink)"];')
    for r in spec.registers.values():
        tokens = "●" * r.initial_tokens
        lines.append(
            f'  "{r.name}" [shape=box, label="EB {r.name} {tokens}"];'
        )
    for b in spec.blocks.values():
        if b.latency is not None:
            label = f"VL {b.name}\\n(go/done/ack)"
            shape = "component"
        elif b.is_early:
            label = f"EJ {b.name}"
            shape = "invtrapezium"
        elif b.n_inputs > 1:
            label = f"J {b.name}"
            shape = "invtrapezium"
        elif b.n_outputs > 1:
            label = f"F {b.name}"
            shape = "trapezium"
        else:
            label = b.name
            shape = "ellipse"
        lines.append(f'  "{b.name}" [shape={shape}, label="{label}"];')
    for conn in spec.connections:
        src = _endpoint_node(spec, conn.src)
        dst = _endpoint_node(spec, conn.dst)
        style = "bold" if conn.passive else "solid"
        lines.append(
            f'  "{src}" -> "{dst}" [label="{conn.name}", style={style}];'
        )
        if show_counterflow and not conn.passive:
            lines.append(
                f'  "{dst}" -> "{src}" [style=dashed, color=red, '
                f"arrowsize=0.5, constraint=false];"
            )
    lines.append("}")
    return "\n".join(lines) + "\n"
