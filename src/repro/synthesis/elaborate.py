"""Elaboration of a :class:`~repro.synthesis.spec.SystemSpec`.

Two backends:

* :func:`to_behavioral` -- instantiate the cycle-accurate controllers
  of :mod:`repro.elastic.behavioral` (the paper's Verilog simulation
  model, including randomised environments and latencies);
* :func:`to_gates` -- emit the gate/latch/FF netlist of
  :mod:`repro.elastic.gates` (the paper's BLIF/SMV models), with
  non-deterministic environment stubs optionally included for model
  checking, or excluded for control-layer area accounting.

:func:`control_layer_area` runs the constant-propagation + pruning +
literal-count pipeline, which automatically removes the ``{V−, S−}``
logic of channels that can never see anti-tokens -- the paper's "this
simplification is performed by simple logic synthesis techniques".
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.elastic.behavioral import (
    Controller,
    EagerFork,
    EarlyJoin,
    ElasticBuffer,
    ElasticNetwork,
    Join,
    PassiveAntiToken,
    Pipe,
    Sink,
    Source,
    VariableLatency,
)
from repro.elastic.channel import Channel
from repro.elastic.gates import (
    GateChannel,
    build_elastic_buffer,
    build_fork,
    build_join,
    build_nd_sink,
    build_nd_source,
    build_passive,
    build_variable_latency,
)
from repro.rtl.area import AreaReport, constant_propagate, count_area, prune_dead
from repro.rtl.netlist import Netlist
from repro.synthesis.spec import BlockSpec, Connection, Endpoint, SystemSpec


def _rng(seed: int, tag: str) -> random.Random:
    return random.Random(f"{seed}:{tag}")


# ----------------------------------------------------------------------
# Behavioural backend
# ----------------------------------------------------------------------
def to_behavioral(
    spec: SystemSpec,
    seed: int = 0,
    monitor: bool = True,
    check_data: bool = True,
) -> ElasticNetwork:
    """Build the cycle-accurate elastic network for ``spec``."""
    spec.validate()
    net = ElasticNetwork(spec.name)

    # Channels: one per connection; passive connections get an up/down
    # pair glued by the Fig. 7(a) interface.
    src_side: Dict[str, Channel] = {}
    dst_side: Dict[str, Channel] = {}
    for conn in spec.connections:
        if conn.passive:
            up = net.add_channel(f"{conn.name}.up", monitor=monitor, check_data=check_data)
            down = net.add_channel(conn.name, monitor=monitor, check_data=check_data)
            net.add(PassiveAntiToken(f"{conn.name}.passive", up, down))
            src_side[conn.name] = up
            dst_side[conn.name] = down
        else:
            ch = net.add_channel(conn.name, monitor=monitor, check_data=check_data)
            src_side[conn.name] = ch
            dst_side[conn.name] = ch

    def channel_at(endpoint: Endpoint, role: str) -> Channel:
        for conn in spec.connections:
            if role == "src" and conn.src == endpoint:
                return src_side[conn.name]
            if role == "dst" and conn.dst == endpoint:
                return dst_side[conn.name]
        raise KeyError(f"no connection at {endpoint} as {role}")

    for s in spec.sources.values():
        net.add(
            Source(
                s.name,
                channel_at(("source", s.name, "out"), "src"),
                data_fn=s.data_fn,
                p_valid=s.p_valid,
                rng=_rng(seed, f"src.{s.name}"),
            )
        )
    for s in spec.sinks.values():
        net.add(
            Sink(
                s.name,
                channel_at(("sink", s.name, "in"), "dst"),
                p_stop=s.p_stop,
                p_kill=s.p_kill,
                rng=_rng(seed, f"sink.{s.name}"),
            )
        )
    for r in spec.registers.values():
        net.add(
            ElasticBuffer(
                r.name,
                channel_at(("register", r.name, "in"), "dst"),
                channel_at(("register", r.name, "out"), "src"),
                capacity=r.capacity,
                initial_tokens=r.initial_tokens,
                initial_data=r.initial_data,
            )
        )
    for b in spec.blocks.values():
        _behavioral_block(net, spec, b, channel_at, seed)
    return net


def _behavioral_block(
    net: ElasticNetwork,
    spec: SystemSpec,
    b: BlockSpec,
    channel_at,
    seed: int,
) -> None:
    ins = [channel_at(("block", b.name, f"in{i}"), "dst") for i in range(b.n_inputs)]
    outs = [channel_at(("block", b.name, f"out{i}"), "src") for i in range(b.n_outputs)]

    if b.latency is not None:
        net.add(
            VariableLatency(
                b.name,
                ins[0],
                outs[0],
                latency=b.latency,
                func=b.func,
                rng=_rng(seed, f"vl.{b.name}"),
            )
        )
        return

    if b.n_inputs > 1:
        target = outs[0]
        if b.n_outputs > 1:
            target = net.add_channel(f"{b.name}.j2f")
        if b.is_early:
            net.add(EarlyJoin(f"{b.name}.join", ins, target, b.ee))
        else:
            combine = b.func if b.func is not None else tuple
            net.add(Join(f"{b.name}.join", ins, target, combine=combine))
        if b.n_outputs > 1:
            net.add(
                EagerFork(f"{b.name}.fork", target, outs, branch_data=b.branch_data)
            )
    elif b.n_outputs > 1:
        source = ins[0]
        if b.func is not None:
            mid = net.add_channel(f"{b.name}.p2f")
            net.add(Pipe(f"{b.name}.fn", source, mid, func=b.func))
            source = mid
        net.add(EagerFork(f"{b.name}.fork", source, outs, branch_data=b.branch_data))
    else:
        net.add(Pipe(b.name, ins[0], outs[0], func=b.func))


# ----------------------------------------------------------------------
# Gate-level backend
# ----------------------------------------------------------------------
@dataclass
class GateElaboration:
    """Result of :func:`to_gates`."""

    netlist: Netlist
    #: consumer-side channel per connection name (``<name>`` for plain
    #: connections; passive connections also expose ``<name>.up``)
    channels: Dict[str, GateChannel]
    #: data wires per connection name (primary inputs, for EE functions)
    data_wires: Dict[str, List[str]]
    #: environment choice inputs (source offers, sink stalls/kills, VL
    #: done signals) -- useful for fairness constraints
    env_inputs: List[str] = field(default_factory=list)


def to_gates(
    spec: SystemSpec,
    include_env: bool = True,
    as_latches: bool = True,
) -> GateElaboration:
    """Emit the gate-level control layer for ``spec``.

    With ``include_env`` the sources/sinks become protocol-obeying
    non-deterministic stubs (for model checking); without it the
    environment-driven wires become free primary inputs and no
    environment state is added (for area accounting of the control
    layer alone).
    """
    spec.validate()
    nl = Netlist(spec.name)
    channels: Dict[str, GateChannel] = {}
    data_wires: Dict[str, List[str]] = {}
    env_inputs: List[str] = []
    src_side: Dict[str, GateChannel] = {}
    dst_side: Dict[str, GateChannel] = {}

    for conn in spec.connections:
        if conn.passive:
            up = GateChannel.declare(nl, f"{conn.name}.up")
            down = GateChannel.declare(nl, conn.name)
            build_passive(nl, up, down, prefix=f"{conn.name}.pas")
            channels[f"{conn.name}.up"] = up
            channels[conn.name] = down
            src_side[conn.name] = up
            dst_side[conn.name] = down
        else:
            ch = GateChannel.declare(nl, conn.name)
            channels[conn.name] = ch
            src_side[conn.name] = ch
            dst_side[conn.name] = ch
        wires = [nl.add_input(f"{conn.name}.d{i}") for i in range(conn.data_bits)]
        data_wires[conn.name] = wires

    def channel_at(endpoint: Endpoint, role: str) -> Tuple[GateChannel, Connection]:
        for conn in spec.connections:
            if role == "src" and conn.src == endpoint:
                return src_side[conn.name], conn
            if role == "dst" and conn.dst == endpoint:
                return dst_side[conn.name], conn
        raise KeyError(f"no connection at {endpoint} as {role}")

    for s in spec.sources.values():
        ch, _ = channel_at(("source", s.name, "out"), "src")
        if include_env:
            choice = nl.add_input(f"{s.name}.choice")
            env_inputs.append(choice)
            build_nd_source(nl, ch, prefix=s.name, choice_input=choice)
        else:
            nl.add_input(ch.vp)
            nl.NOT(ch.vp, out=ch.sn)

    for s in spec.sinks.values():
        ch, _ = channel_at(("sink", s.name, "in"), "dst")
        if include_env:
            stall = nl.add_input(f"{s.name}.stall")
            env_inputs.append(stall)
            kill = None
            if s.p_kill > 0:
                kill = nl.add_input(f"{s.name}.kill")
                env_inputs.append(kill)
            build_nd_sink(nl, ch, prefix=s.name, stall_input=stall, kill_input=kill)
        else:
            nl.add_input(ch.sp)
            if s.p_kill > 0:
                nl.add_input(ch.vn)
            else:
                nl.const0(out=ch.vn)

    for r in spec.registers.values():
        if r.capacity != 2:
            raise ValueError(
                f"{r.name}: the gate-level backend only emits the dual "
                f"EB of two EHBs (capacity 2), got capacity {r.capacity}"
            )
        left, _ = channel_at(("register", r.name, "in"), "dst")
        right, _ = channel_at(("register", r.name, "out"), "src")
        build_elastic_buffer(
            nl,
            left,
            right,
            prefix=r.name,
            initial_tokens=r.initial_tokens,
            as_latches=as_latches,
        )

    for b in spec.blocks.values():
        _gate_block(nl, spec, b, channel_at, data_wires, env_inputs, include_env)

    for name, ch in channels.items():
        for wire in ch.wires():
            nl.add_output(wire)
    nl.validate()
    return GateElaboration(
        netlist=nl, channels=channels, data_wires=data_wires, env_inputs=env_inputs
    )


def _wire_through(nl: Netlist, left: GateChannel, right: GateChannel) -> None:
    """A 1-in/1-out block's control layer is just wires."""
    nl.BUF(left.vp, out=right.vp)
    nl.BUF(left.sn, out=right.sn)
    nl.BUF(right.sp, out=left.sp)
    nl.BUF(right.vn, out=left.vn)


def _gate_block(
    nl: Netlist,
    spec: SystemSpec,
    b: BlockSpec,
    channel_at,
    data_wires: Dict[str, List[str]],
    env_inputs: List[str],
    include_env: bool,
) -> None:
    ins: List[GateChannel] = []
    in_data: List[List[str]] = []
    for i in range(b.n_inputs):
        ch, conn = channel_at(("block", b.name, f"in{i}"), "dst")
        ins.append(ch)
        in_data.append(data_wires[conn.name])
    outs = [
        channel_at(("block", b.name, f"out{i}"), "src")[0]
        for i in range(b.n_outputs)
    ]

    if b.latency is not None:
        done = nl.add_input(f"{b.name}.done")
        env_inputs.append(done)
        build_variable_latency(nl, ins[0], outs[0], prefix=b.name, done_input=done)
        return

    if b.n_inputs > 1:
        target = outs[0]
        if b.n_outputs > 1:
            target = GateChannel.declare(nl, f"{b.name}.j2f")
        build_join(
            nl,
            ins,
            target,
            prefix=b.name,
            ee=b.gate_ee if b.is_early else None,
            datas=in_data,
            g_inputs=b.g_inputs,
        )
        if b.n_outputs > 1:
            build_fork(nl, target, outs, prefix=f"{b.name}.fork")
    elif b.n_outputs > 1:
        build_fork(nl, ins[0], outs, prefix=b.name)
    else:
        _wire_through(nl, ins[0], outs[0])


def control_layer_area(spec: SystemSpec) -> AreaReport:
    """Area of the elastic control layer (Table 1's last columns).

    Builds the gate netlist without environment stubs, sweeps constants
    (removing the negative wires of channels that never carry
    anti-tokens) and prunes dead logic, then counts literals in
    factored form, transparent latches and flip-flops.
    """
    elab = to_gates(spec, include_env=False, as_latches=True)
    simplified = constant_propagate(elab.netlist)
    pruned = prune_dead(simplified)
    return count_area(pruned)
