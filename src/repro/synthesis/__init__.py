"""The elasticization flow (Sect. 6 of the paper).

A synchronous system is described as a :class:`~repro.synthesis.spec.
SystemSpec` -- functional blocks, registers, sources and sinks wired by
named connections.  The flow then generates the elastic control layer:

* :func:`~repro.synthesis.elaborate.to_behavioral` -- a cycle-accurate
  :class:`~repro.elastic.behavioral.ElasticNetwork` for throughput
  simulation (the paper's Verilog model);
* :func:`~repro.synthesis.elaborate.to_gates` -- a gate/latch/FF
  netlist for area accounting and model checking (the paper's BLIF/SMV
  models).

The conversion follows the paper's recipe: every register becomes an EB
controller (a pair of EHBs), every multi-input block gets a join (or an
early join, at the designer's choice), every multi-output block an
eager fork, variable-latency units get VL controllers, and channels
whose negative wires are structurally constant are simplified away
(passive anti-token interfaces or plain constant propagation).
"""

from repro.synthesis.spec import (
    BlockSpec,
    Connection,
    Endpoint,
    RegisterSpec,
    SinkSpec,
    SourceSpec,
    SystemSpec,
)
from repro.synthesis.elaborate import (
    GateElaboration,
    control_layer_area,
    to_behavioral,
    to_gates,
)
from repro.synthesis.abstraction import check_liveness, spec_to_dmg, throughput_bound
from repro.synthesis.dot import spec_to_dot
from repro.synthesis.flow import ElasticLintError, elasticize

__all__ = [
    "ElasticLintError",
    "elasticize",
    "check_liveness",
    "spec_to_dmg",
    "spec_to_dot",
    "throughput_bound",
    "BlockSpec",
    "Connection",
    "Endpoint",
    "RegisterSpec",
    "SinkSpec",
    "SourceSpec",
    "SystemSpec",
    "GateElaboration",
    "control_layer_area",
    "to_behavioral",
    "to_gates",
]
