"""Buffer sizing: exploring the re-pipelining freedom of elastic systems.

The paper's introduction: elastic systems "enable correct-by-
construction re-pipelining of wires and computation blocks".  Where a
conventional design needs a full re-timing flow, an elastic design can
insert an EB on any channel and stay functionally correct; only
*performance* changes.  This module provides the exploration tools:

* :func:`insert_buffer` -- splice an EB into any connection of a
  :class:`~repro.synthesis.spec.SystemSpec`;
* :func:`critical_cycles` -- rank the DMG abstraction's cycles by their
  token/latency ratio (the throughput bottlenecks);
* :func:`sweep_buffer_depth` -- throughput vs. EB chain depth on one
  channel;
* :func:`optimize_buffers` -- greedy buffer insertion maximising
  simulated throughput under an EB budget, the elastic analogue of
  slack matching.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.synthesis.abstraction import spec_to_dmg
from repro.synthesis.elaborate import to_behavioral
from repro.synthesis.spec import SystemSpec


def insert_buffer(
    spec: SystemSpec,
    connection_name: str,
    register_name: Optional[str] = None,
    initial_tokens: int = 0,
) -> str:
    """Splice a new EB into ``connection_name`` (mutates ``spec``).

    The original connection now ends at the new register's input; a new
    connection ``<register>->out`` carries on to the original
    destination (inheriting passivity and data bits).  Returns the new
    register's name.
    """
    conn = spec.connection(connection_name)
    if register_name is None:
        base = f"EB@{connection_name}"
        register_name = base
        suffix = 1
        while register_name in spec.registers:
            suffix += 1
            register_name = f"{base}#{suffix}"
    spec.add_register(register_name, initial_tokens=initial_tokens)
    old_dst = conn.dst
    conn.dst = ("register", register_name, "in")
    spec.connect(
        ("register", register_name, "out"),
        old_dst,
        name=f"{register_name}->out",
        data_bits=conn.data_bits,
    )
    spec.validate()
    return register_name


def critical_cycles(
    spec: SystemSpec,
    mean_latency: Optional[Dict[str, float]] = None,
    top: int = 5,
) -> List[Tuple[Fraction, List[str]]]:
    """The ``top`` tightest cycles of the DMG abstraction.

    Returns ``(ratio, arc names)`` pairs sorted by increasing ratio --
    the first entry is the structural throughput bottleneck a designer
    (or :func:`optimize_buffers`) should attack first.
    """
    g, lat = spec_to_dmg(spec, mean_latency)
    arc_delay: Dict[str, int] = {}
    for arc in g.arcs:
        if arc.name.startswith("~") or arc.name.startswith("env:"):
            continue
        arc_delay[arc.name] = lat.get(arc.src, 0)
    m0 = g.initial_marking
    rated: List[Tuple[Fraction, List[str]]] = []
    for cycle in g.simple_cycles():
        d = sum(arc_delay.get(a, 0) for a in cycle)
        if d == 0:
            continue
        rated.append((Fraction(g.marking_of(m0, cycle), d), list(cycle)))
    rated.sort(key=lambda item: item[0])
    return rated[:top]


def _simulated_throughput(
    spec: SystemSpec, probe: str, cycles: int, seed: int
) -> float:
    net = to_behavioral(copy.deepcopy(spec), seed=seed)
    net.run(cycles)
    return net.throughput(probe)


def sweep_buffer_depth(
    spec_factory: Callable[[], SystemSpec],
    connection_name: str,
    probe: str,
    depths: Sequence[int] = (0, 1, 2, 3),
    cycles: int = 3000,
    seed: int = 0,
) -> Dict[int, float]:
    """Throughput vs. number of EBs spliced into one connection."""
    results: Dict[int, float] = {}
    for depth in depths:
        spec = spec_factory()
        target = connection_name
        for _ in range(depth):
            reg = insert_buffer(spec, target)
            target = f"{reg}->out"
        results[depth] = _simulated_throughput(spec, probe, cycles, seed)
    return results


@dataclass
class SizingStep:
    """One greedy insertion."""

    connection: str
    register: str
    throughput: float


@dataclass
class SizingResult:
    """Outcome of :func:`optimize_buffers`."""

    base_throughput: float
    steps: List[SizingStep] = field(default_factory=list)

    @property
    def final_throughput(self) -> float:
        return self.steps[-1].throughput if self.steps else self.base_throughput

    def __str__(self) -> str:
        lines = [f"base Th = {self.base_throughput:.3f}"]
        for step in self.steps:
            lines.append(
                f"  + EB on {step.connection:<14s} -> Th {step.throughput:.3f}"
            )
        return "\n".join(lines)


def optimize_buffers(
    spec: SystemSpec,
    candidates: Sequence[str],
    probe: str,
    budget: int = 3,
    cycles: int = 2500,
    seed: int = 0,
    min_gain: float = 0.005,
) -> Tuple[SystemSpec, SizingResult]:
    """Greedy slack matching: insert up to ``budget`` EBs.

    Each round simulates every candidate connection with one extra EB
    and keeps the best insertion if it beats the incumbent by at least
    ``min_gain``.  Mutated copies are used throughout; the input spec
    is never modified.  Returns the optimised spec and the step log.
    """
    current = copy.deepcopy(spec)
    base = _simulated_throughput(current, probe, cycles, seed)
    result = SizingResult(base_throughput=base)
    best_th = base
    live_candidates = list(candidates)

    for _ in range(budget):
        round_best: Optional[Tuple[float, str, SystemSpec, str]] = None
        for name in live_candidates:
            trial = copy.deepcopy(current)
            reg = insert_buffer(trial, name)
            th = _simulated_throughput(trial, probe, cycles, seed)
            if round_best is None or th > round_best[0]:
                round_best = (th, name, trial, reg)
        if round_best is None or round_best[0] < best_th + min_gain:
            break
        best_th, name, current, reg = round_best
        # allow stacking more depth on the same path next round
        live_candidates.append(f"{reg}->out")
        result.steps.append(
            SizingStep(connection=name, register=reg, throughput=best_th)
        )
    return current, result
