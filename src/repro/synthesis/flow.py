"""The designer-facing elasticization flow.

:func:`elasticize` is the one-call path from a
:class:`~repro.synthesis.spec.SystemSpec` to a running
:class:`~repro.elastic.behavioral.ElasticNetwork`: it runs the
spec-level lint rules first and **fails fast** on ERROR findings, so a
structural deadlock -- a token-free cycle, an undersized (capacity-1)
buffer loop, an annihilator-free counterflow cycle -- is diagnosed at
build time with the offending cycle named, instead of surfacing as a
:class:`~repro.resilience.NetworkStallWatchdog` stall diagnosis deep
into a simulation.  Pass ``lint=False`` to opt out (e.g. to simulate a
deadlock on purpose and watch the watchdog catch it).
"""

from __future__ import annotations

from typing import List, Optional

from repro.elastic.behavioral import ElasticNetwork
from repro.synthesis.elaborate import to_behavioral
from repro.synthesis.spec import SystemSpec

__all__ = ["ElasticLintError", "elasticize"]


class ElasticLintError(ValueError):
    """The spec failed the build-time lint pass.

    ``findings`` holds every finding of the failed pass (not just the
    errors), so callers can render or serialise the full diagnosis.
    """

    def __init__(self, findings: List) -> None:
        errors = [f for f in findings if f.severity.name == "ERROR"]
        lines = [f"elasticize: {len(errors)} lint error(s) in the spec:"]
        lines += [f"  {f}" for f in errors]
        super().__init__("\n".join(lines))
        self.findings = list(findings)
        self.errors = errors


def elasticize(
    spec: SystemSpec,
    seed: int = 0,
    lint: bool = True,
    monitor: bool = True,
    check_data: bool = True,
) -> ElasticNetwork:
    """Lint ``spec`` and elaborate it into a behavioural network.

    Raises :class:`ElasticLintError` (carrying the findings) when the
    spec-level rules report any ERROR -- every channel cycle must hold
    a token *and* spare EB capacity, and every early join's counterflow
    must be able to annihilate.  WARNING/INFO findings never block the
    build.  ``lint=False`` skips the pass entirely.
    """
    if lint:
        from repro.lint.elastic_rules import lint_spec

        findings = lint_spec(spec)
        if any(f.severity.name == "ERROR" for f in findings):
            raise ElasticLintError(findings)
    return to_behavioral(
        spec, seed=seed, monitor=monitor, check_data=check_data
    )
