"""Command-line interface to the elastic-circuit framework.

Usage (after ``pip install -e .``)::

    python -m repro table1   [--cycles 10000] [--seed 2007]
    python -m repro simulate --config active [--cycles 5000] [--seed 0]
    python -m repro verify   [--design diamond|early|vl|all]
                             [--checkpoint dir] [--cache dir] [--no-cache]
                             [--workers host:port,host:port]
    python -m repro worker   [--listen host:port] [--shard-timeout 60]
                             [--once]
    python -m repro export   --format verilog|blif|smv|dot
                             [--config active] [-o out.v]
    python -m repro bound    [--config lazy]
    python -m repro dmg
    python -m repro inject   [--netlist dual_ehb|...|processor]
                             [--fault stuck0,stuck1] [--cycles 400]
                             [--seed 2007] [--report out.json] [--shrink]
                             [--metrics] [--degradation] [--profile]
                             [--progress]
                             [--checkpoint dir] [--resume dir]
                             [--shard-timeout 60] [--max-retries 2]
                             [--backend batch|compiled] [--cache dir]
                             [--workers host:port,host:port]
                             [--fabric-checkpoint dir]
    python -m repro profile  [--design early_join|active|pipeline|...]
                             [--backend auto|scalar|batch|compiled]
                             [--cycles 2000] [--seed 2007]
                             [--compare-model] [--tolerance 0.15]
                             [--json out.json] [--cache dir] [--list]
    python -m repro build    [target ...] [--cache dir] [--stats] [--clear]
    python -m repro lint     [target ...] [--list] [--json out.json]
                             [--file design.blif] [--explain RULEID]
                             [--sarif out.sarif] [--baseline file]
                             [--write-baseline file] [--no-cache]
                             [--cache dir]
    python -m repro trace    [--config active|...|pipeline] [--cycles 64]
                             [--vcd out.vcd] [--events out.jsonl]
    python -m repro stats    [--config active] [--cycles 5000] [--seed 0]
                             [--prometheus]
    python -m repro fuzz     [--seed 7] [--specs 100] [--max-blocks 48]
                             [--budget 60] [--corpus dir] [--mutate name]
                             [--replay dir] [--json out.json]

mirroring the paper's framework, which generated simulation, synthesis
and verification models of the same controllers from one description.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.casestudy.fig9 import Config, build_fig9_spec
from repro.casestudy.table1 import format_table, run_config, run_table1

_CONFIGS = {c.name.lower(): c for c in Config}


def _config(name: str) -> Config:
    try:
        return _CONFIGS[name.lower()]
    except KeyError:
        raise SystemExit(
            f"unknown configuration {name!r}; pick one of {sorted(_CONFIGS)}"
        )


def cmd_table1(args: argparse.Namespace) -> int:
    rows = run_table1(cycles=args.cycles, seed=args.seed)
    print(format_table(rows))
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    from repro.synthesis.elaborate import to_behavioral

    spec = build_fig9_spec(_config(args.config), seed=args.seed)
    net = to_behavioral(spec, seed=args.seed)
    net.run(args.cycles)
    print(net.report())
    print(f"\nsystem throughput: {net.throughput('Din->S'):.3f} transfers/cycle")
    return 0


def cmd_worker(args: argparse.Namespace) -> int:
    from repro.fabric import serve

    host, sep, port = args.listen.rpartition(":")
    if not sep or not port.isdigit():
        raise SystemExit(
            f"bad --listen address {args.listen!r}; expected host:port"
        )

    def announce(bound_host: str, bound_port: int) -> None:
        print(f"fabric worker listening on {bound_host}:{bound_port}",
              flush=True)

    try:
        serve(host or "127.0.0.1", int(port),
              shard_timeout=args.shard_timeout, once=args.once,
              on_ready=announce)
    except KeyboardInterrupt:
        print("worker stopped", file=sys.stderr)
    return 0


def _fabric_verify(args: argparse.Namespace) -> int:
    """``repro verify --workers``: distribute designs over the fabric."""
    from repro.fabric import (
        FabricCoordinator,
        FabricError,
        parse_workers,
    )
    from repro.resilience import ShardFailure
    from repro.verif.testbenches import DESIGNS

    designs = sorted(DESIGNS) if args.design == "all" else [args.design]
    params = {
        "designs": designs,
        "max_states": 2_000_000,
        "cache": None if args.no_cache else args.cache,
    }
    try:
        workers = parse_workers(args.workers)
        coordinator = FabricCoordinator(
            "verify", params, list(enumerate(designs)), workers,
        )
        results = coordinator.run()
    except (ValueError, FabricError, ShardFailure) as exc:
        raise SystemExit(f"fabric verify failed: {exc}")
    ok = True
    for index in sorted(results):
        r = results[index]
        verdict = "OK" if r["ok"] else "FAIL " + ", ".join(r["failures"])
        ok = ok and r["ok"]
        print(f"{r['design']:10s} {r['properties']:3d} properties over "
              f"{r['states']} states: {verdict}")
    return 0 if ok else 1


def cmd_verify(args: argparse.Namespace) -> int:
    from repro.resilience import CheckpointMismatch
    from repro.verif.properties import verify_netlist
    from repro.verif.testbenches import DESIGNS, diamond_with_feedback

    if args.workers:
        return _fabric_verify(args)
    if args.design == "all":
        raise SystemExit("--design all needs --workers (the fabric "
                         "distributes one Kripke build per design)")
    nl, chans, fairness = diamond_with_feedback(**DESIGNS[args.design])
    cache = None
    if not args.no_cache:
        from repro.codegen import build_cache

        cache = build_cache(args.cache)
    try:
        result = verify_netlist(
            nl, chans, fairness=fairness, max_states=2_000_000,
            checkpoint=args.checkpoint, cache=cache,
        )
    except CheckpointMismatch as exc:
        raise SystemExit(str(exc))
    print(result)
    return 0 if result.ok else 1


def cmd_export(args: argparse.Namespace) -> int:
    from repro.rtl.export import channel_specs_smv, to_blif, to_smv, to_verilog
    from repro.synthesis.dot import spec_to_dot
    from repro.synthesis.elaborate import to_gates

    spec = build_fig9_spec(_config(args.config))
    if args.format == "dot":
        text = spec_to_dot(spec)
    else:
        elab = to_gates(spec, include_env=True, as_latches=True)
        if args.format == "verilog":
            text = to_verilog(elab.netlist, module="fig9_control")
        elif args.format == "blif":
            text = to_blif(elab.netlist, model="fig9_control")
        else:
            specs = channel_specs_smv(elab.channels.values())
            fairness = [f"{sig} = TRUE" for sig in elab.env_inputs]
            text = to_smv(elab.netlist, specs=specs, fairness=fairness)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {len(text.splitlines())} lines to {args.output}")
    else:
        print(text, end="")
    return 0


def cmd_bound(args: argparse.Namespace) -> int:
    from repro.synthesis.abstraction import check_liveness, throughput_bound

    spec = build_fig9_spec(_config(args.config))
    live = check_liveness(spec)
    bound = throughput_bound(spec, mean_latency={"M1": 3.6, "M2": 1.5})
    print(f"configuration: {args.config}")
    print(f"structurally live: {live}")
    print(f"lazy throughput bound (min cycle ratio): {bound} = {float(bound):.3f}")
    return 0


def _trace_network(config: str, seed: int):
    """Build the network to trace: a Fig. 9 config or the Fig. 5 chain."""
    if config == "pipeline":
        from repro.elastic.behavioral import (
            ElasticBuffer,
            ElasticNetwork,
            Sink,
            Source,
        )

        net = ElasticNetwork("fig5")
        din = net.add_channel("Din")
        mid = net.add_channel("mid")
        dout = net.add_channel("Dout")
        net.add(Source("src", din))
        net.add(ElasticBuffer("EB0", din, mid, initial_tokens=1,
                              initial_data=["t0"]))
        net.add(ElasticBuffer("EB1", mid, dout))
        net.add(Sink("snk", dout))
        return net
    from repro.synthesis.elaborate import to_behavioral

    spec = build_fig9_spec(_config(config), seed=seed)
    return to_behavioral(spec, seed=seed)


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import (
        JsonlSink,
        MetricsRegistry,
        TraceRecorder,
        VcdSink,
        collect_network_metrics,
    )

    net = _trace_network(args.config, args.seed)
    registry = MetricsRegistry()
    sinks: list = []
    if args.vcd:
        sinks.append(VcdSink(args.vcd))
    if args.events:
        sinks.append(JsonlSink(args.events))
    recorder = TraceRecorder(
        capacity=args.buffer, sinks=sinks, metrics=registry
    )
    recorder.attach_network(net, include_idle=args.include_idle)
    net.run(args.cycles)
    recorder.close()
    collect_network_metrics(net, registry)
    print(f"traced {net.cycle} cycles of {net.name} "
          f"({len(net.channels)} channels, {recorder.emitted} events)")
    for kind, count in recorder.counts().items():
        print(f"  {kind:12s} {count}")
    metric_transfers = sum(
        c.value for c in registry.series("channel_transfers_total")
    )
    traced = (recorder.counts().get("transfer+", 0)
              + recorder.counts().get("transfer-", 0))
    print(f"reconciliation: {traced} traced transfers vs "
          f"{metric_transfers} counted by metrics "
          f"({'OK' if traced == metric_transfers else 'MISMATCH'})")
    print()
    print(registry.render())
    if args.vcd:
        print(f"wrote waveforms to {args.vcd}")
    if args.events:
        print(f"wrote events to {args.events}")
    return 0 if traced == metric_transfers else 1


def cmd_stats(args: argparse.Namespace) -> int:
    from repro.elastic.behavioral import ElasticBuffer
    from repro.elastic.instrumentation import OccupancyProbe
    from repro.obs import MetricsRegistry, TraceRecorder, collect_network_metrics

    net = _trace_network(args.config, args.seed)
    registry = MetricsRegistry()
    buffers = [c for c in net.controllers if isinstance(c, ElasticBuffer)]
    if buffers:
        net.add(OccupancyProbe("occupancy", buffers, registry=registry))
    # Events go to the registry's EE counters only; keep the ring tiny.
    recorder = TraceRecorder(capacity=1, metrics=registry)
    recorder.attach_network(net)
    net.run(args.cycles)
    collect_network_metrics(net, registry)
    if args.prometheus:
        print(registry.render_prometheus(), end="")
        return 0
    print(f"{net.name}: {net.cycle} cycles, {len(net.channels)} channels, "
          f"{len(buffers)} elastic buffers")
    print(registry.render())
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    from repro.obs.analyze import profile_designs, run_profile

    if args.list:
        for name in profile_designs():
            print(name)
        return 0
    cache = None
    if args.backend == "compiled" and not args.no_cache:
        from repro.codegen import build_cache

        cache = build_cache(args.cache)
    try:
        report = run_profile(
            args.design, cycles=args.cycles, seed=args.seed,
            backend=args.backend, compare_model=args.compare_model,
            tolerance=args.tolerance, cache=cache,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    print(report.render())
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(report.to_json())
        print(f"wrote report to {args.json}")
    if args.compare_model and not report.model["within_tolerance"]:
        return 1
    return 0


def cmd_inject(args: argparse.Namespace) -> int:
    from time import perf_counter
    from repro.faults import (
        CampaignConfig,
        CampaignHarness,
        ProcessorCampaignConfig,
        enumerate_injections,
        failing_predicate,
        render_failure,
        resolve_target,
        run_campaign,
        run_processor_campaign,
        shrink_schedule,
    )
    from repro.faults.targets import TARGETS

    from repro.faults.models import RTL_FAULT_KINDS

    kinds = tuple(k.strip() for k in args.fault.split(",") if k.strip())
    unknown_kinds = [k for k in kinds if k not in RTL_FAULT_KINDS]
    if not kinds:
        raise SystemExit(
            f"no fault kinds given; pick from {', '.join(RTL_FAULT_KINDS)}"
        )
    if unknown_kinds and args.netlist != "processor":
        raise SystemExit(
            f"unknown fault kind(s) {', '.join(unknown_kinds)}; "
            f"pick from {', '.join(RTL_FAULT_KINDS)}"
        )
    if args.lanes < 1 or args.jobs < 1:
        raise SystemExit("--lanes and --jobs must be positive")
    checkpoint = args.checkpoint
    if args.fabric_checkpoint:
        if checkpoint and checkpoint != args.fabric_checkpoint:
            raise SystemExit(
                "--checkpoint and --fabric-checkpoint name different "
                "directories; the fabric coordinator persists chunks to "
                "one store"
            )
        checkpoint = args.fabric_checkpoint
    workers = None
    if args.workers:
        if args.netlist == "processor":
            raise SystemExit(
                "--workers needs an RTL netlist; the behavioural "
                "processor campaign is not distributable"
            )
        if args.jobs > 1:
            raise SystemExit(
                "--workers replaces --jobs: the socket fabric shards "
                "chunks over remote workers instead of local processes"
            )
        workers = [w.strip() for w in args.workers.split(",") if w.strip()]
        if not workers:
            raise SystemExit("--workers got no addresses")
    if args.resume:
        if checkpoint and checkpoint != args.resume:
            raise SystemExit(
                "--checkpoint and --resume name different directories; "
                "--resume alone is enough to continue a run"
            )
        from pathlib import Path

        if not (Path(args.resume) / "manifest.json").is_file():
            raise SystemExit(
                f"--resume {args.resume}: no checkpoint manifest found "
                "(start the campaign with --checkpoint first)"
            )
        checkpoint = args.resume
    if args.netlist == "processor" and checkpoint:
        raise SystemExit(
            "--checkpoint/--resume need an RTL netlist; the behavioural "
            "processor campaign is not checkpointed"
        )
    if args.netlist == "processor" and args.backend != "batch":
        raise SystemExit(
            "--backend needs an RTL netlist; the behavioural processor "
            "campaign has no gate netlist to compile"
        )
    registry = None
    if args.metrics:
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
    progress = None
    if args.progress:
        from repro.obs import ProgressReporter

        progress = ProgressReporter("campaign", every=1)
    t0 = perf_counter()
    if args.netlist == "processor":
        if args.lanes > 1 or args.jobs > 1:
            raise SystemExit(
                "--lanes/--jobs need an RTL netlist; the behavioural "
                "processor campaign only runs sequentially"
            )
        if args.degradation:
            raise SystemExit(
                "--degradation needs an RTL netlist; the behavioural "
                "processor campaign has no batch lanes to quarantine"
            )
        if args.profile:
            raise SystemExit(
                "--profile needs an RTL netlist; profile the behavioural "
                "pipeline directly with 'repro profile --design processor'"
            )
        report = run_processor_campaign(
            ProcessorCampaignConfig(cycles=args.cycles, seed=args.seed),
            progress=progress,
            metrics=registry,
        )
    else:
        if args.netlist not in TARGETS:
            raise SystemExit(
                f"unknown netlist {args.netlist!r}; pick one of "
                f"{sorted(TARGETS) + ['processor']}"
            )
        config = CampaignConfig(
            cycles=args.cycles, seed=args.seed, kinds=kinds
        )
        from repro.fabric import FabricError
        from repro.resilience import CheckpointMismatch, ShardFailure

        try:
            report = run_campaign(
                args.netlist, config, lanes=args.lanes, jobs=args.jobs,
                progress=progress, metrics=registry,
                checkpoint=checkpoint,
                shard_timeout=args.shard_timeout,
                max_retries=args.max_retries,
                degradation=args.degradation,
                profile=args.profile,
                backend=args.backend,
                cache=args.cache,
                workers=workers,
            )
        except KeyboardInterrupt:
            hint = (
                f"; resume with --resume {checkpoint}" if checkpoint else ""
            )
            print(f"\ninterrupted; worker processes terminated{hint}",
                  file=sys.stderr)
            return 130
        except CheckpointMismatch as exc:
            raise SystemExit(str(exc))
        except FabricError as exc:
            raise SystemExit(f"fabric campaign failed: {exc}")
        except ShardFailure as exc:
            raise SystemExit(f"campaign failed: {exc}")
        if args.shrink:
            detected = report.detected()
            if detected:
                target = resolve_target(args.netlist)
                harness = CampaignHarness(target, config)
                by_label = {
                    i.label(): i for i in enumerate_injections(target, config)
                }
                schedule = [by_label[o.fault] for o in detected]
                minimal = shrink_schedule(schedule, failing_predicate(harness))
                print(render_failure(harness, minimal))
                print()
    wall = perf_counter() - t0
    if args.metrics:
        injections_run = len(report.outcomes)
        report.metrics = {
            "cycles_per_second": round(
                injections_run * report.cycles / wall, 1
            ) if wall > 0 else 0.0,
            "injections": injections_run,
            "jobs": args.jobs,
            "lanes": args.lanes,
            "series": registry.snapshot(),
            "wall_time_s": round(wall, 3),
        }
    print(report.table())
    if args.metrics:
        print(f"wall time: {wall:.3f}s "
              f"({report.metrics['cycles_per_second']:.0f} "
              f"injection-cycles/s, lanes={args.lanes}, jobs={args.jobs})")
        print(registry.render())
    if args.report:
        with open(args.report, "w") as handle:
            handle.write(report.to_json())
        print(f"wrote report to {args.report}")
    return 0 if report.coverage == 1.0 else 1


def cmd_build(args: argparse.Namespace) -> int:
    from time import perf_counter

    from repro.codegen import build_cache, process_stats

    cache = build_cache(args.cache)
    if args.clear:
        removed = cache.clear()
        print(f"cleared {removed} artifact(s) from {cache.root}")
    targets = args.targets
    if not targets and not args.clear and not args.stats:
        from repro.faults.targets import TARGETS

        targets = sorted(TARGETS)
    if targets:
        from repro.faults.targets import TARGETS

        unknown = [name for name in targets if name not in TARGETS]
        if unknown:
            raise SystemExit(
                f"unknown build target(s) {', '.join(sorted(unknown))}; "
                f"pick from {', '.join(sorted(TARGETS))}"
            )
        for name in targets:
            tgt = TARGETS[name]()
            before = process_stats()["hits"]
            t0 = perf_counter()
            module = cache.load_module(
                tgt.netlist,
                hooks=frozenset(tgt.fault_sites),
                observe=frozenset(tgt.observe),
            )
            ms = (perf_counter() - t0) * 1e3
            verb = "cached" if process_stats()["hits"] > before else "built"
            print(f"{name:18s} {verb:6s} {module.KEY[:16]} {ms:8.1f} ms")
    if args.stats:
        stats = cache.stats()
        print(f"cache root: {stats['root']}")
        print(f"entries:    {stats['entries']}")
        print(f"bytes:      {stats['bytes']}")
        print(f"process:    {stats['hits']} hit(s), "
              f"{stats['misses']} miss(es) since start")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint import (
        FrontendParseError,
        all_targets,
        lint_file,
        load_baseline,
        new_findings,
        render_witness,
        run_lint,
        sarif_json,
        write_baseline,
    )
    from repro.lint.findings import RULES, Severity

    if args.list:
        from repro.lint import LINT_TARGETS

        for name in sorted(LINT_TARGETS):
            print(name)
        return 0
    if args.explain:
        rule = RULES.get(args.explain)
        if rule is None:
            raise SystemExit(
                f"unknown rule {args.explain!r}; pick from "
                f"{', '.join(sorted(RULES))}"
            )
        print(f"{args.explain} [{rule.severity.name}] {rule.title}")
        print(f"  {rule.clause}")
        if not args.targets and not args.file:
            return 0
    targets = args.targets or ([] if args.file else all_targets())
    cache = None
    if not args.no_cache:
        from repro.codegen import build_cache

        cache = build_cache(args.cache)
    try:
        report = run_lint(targets, cache=cache)
    except KeyError as exc:
        raise SystemExit(str(exc.args[0]))
    for path in args.file or []:
        try:
            report.extend(lint_file(path, cache=cache))
        except (OSError, FrontendParseError) as exc:
            raise SystemExit(str(exc))
    if args.explain:
        matched = [f for f in report.findings if f.rule == args.explain]
        print(f"\n{len(matched)} finding(s) for {args.explain}")
        for f in matched:
            print(f"  {f}")
            if f.witness:
                for line in render_witness(f.witness):
                    print(f"    {line}")
        return 0
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(report.to_json())
        print(f"wrote JSON findings to {args.json}")
    if args.sarif:
        with open(args.sarif, "w") as handle:
            handle.write(sarif_json(report))
        print(f"wrote SARIF 2.1.0 log to {args.sarif}")
    if args.write_baseline:
        count = write_baseline(report, args.write_baseline)
        print(f"recorded {count} fingerprint(s) to {args.write_baseline}")
    print(report.render())
    findings = report.findings
    if args.baseline:
        findings = new_findings(report, load_baseline(args.baseline))
        suppressed = len(report.findings) - len(findings)
        if suppressed:
            print(f"{suppressed} finding(s) suppressed by {args.baseline}")
    new_errors = [f for f in findings if f.severity == Severity.ERROR]
    if new_errors:
        print(f"{len(new_errors)} new error(s)")
        return 1
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.fuzz import (
        MUTATIONS,
        FuzzConfig,
        OracleConfig,
        load_corpus,
        replay_entry,
        run_fuzz,
    )

    if args.mutate and args.mutate not in MUTATIONS:
        raise SystemExit(
            f"unknown mutation {args.mutate!r}; "
            f"pick from {', '.join(sorted(MUTATIONS))}"
        )
    cache = None
    if not args.no_cache:
        from repro.codegen import build_cache

        cache = build_cache(args.cache)

    if args.replay:
        entries = load_corpus(args.replay)
        if not entries:
            raise SystemExit(f"no corpus entries under {args.replay}")
        config = OracleConfig(
            cycles=args.cycles, lanes=args.lanes,
            check_gates=not args.no_gates,
            check_verify=not args.no_verify, cache=cache,
        )
        missing = 0
        for entry in entries:
            finding = replay_entry(entry, config)
            if finding is None:
                missing += 1
                print(f"{entry.name}: NO REPRO (expected "
                      f"[{entry.finding['stage']}])")
            else:
                print(f"{entry.name}: reproduced [{finding.stage}] "
                      f"{finding.detail}")
        print(f"replayed {len(entries)} entr(ies), {missing} without repro")
        return 1 if missing else 0

    config = FuzzConfig(
        seed=args.seed, specs=args.specs, max_blocks=args.max_blocks,
        cycles=args.cycles, lanes=args.lanes, budget=args.budget,
        corpus=args.corpus, mutation=args.mutate,
        shrink=not args.no_shrink, check_gates=not args.no_gates,
        check_verify=not args.no_verify, cache=cache,
    )
    progress = None
    if args.progress:
        progress = lambda done, found: print(  # noqa: E731
            f"  {done}/{args.specs} spec(s), {found} finding(s)",
            file=sys.stderr)
    report = run_fuzz(config, progress=progress)
    print(report.render())
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(report.to_json())
        print(f"wrote report to {args.json}")
    if args.corpus and report.findings:
        print(f"wrote {len(report.findings)} corpus entr(ies) to "
              f"{args.corpus}")
    return 1 if report.findings else 0


def cmd_dmg(args: argparse.Namespace) -> int:
    from repro.core.dmg import fig1_dmg
    from repro.core.export import to_dot

    g = fig1_dmg()
    m = g.initial_marking
    for node in ("n2", "n1", "n7"):
        m = g.fire_any(node, m)
    print(to_dot(g, m), end="")
    return 0


def _version() -> str:
    """The installed distribution version, else the in-tree fallback."""
    try:
        from importlib.metadata import PackageNotFoundError, version

        return version("repro")
    except PackageNotFoundError:
        import repro

        return repro.__version__


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Elastic circuits with early evaluation and token counterflow",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {_version()}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("table1", help="regenerate the paper's Table 1")
    p.add_argument("--cycles", type=int, default=10_000)
    p.add_argument("--seed", type=int, default=2007)
    p.set_defaults(func=cmd_table1)

    p = sub.add_parser("simulate", help="simulate one Fig. 9 configuration")
    p.add_argument("--config", default="active")
    p.add_argument("--cycles", type=int, default=5000)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("verify", help="model check a controller netlist")
    p.add_argument("--design", choices=("diamond", "early", "vl", "all"),
                   default="early",
                   help="one design, or 'all' (needs --workers) to "
                        "distribute every design over the fabric")
    p.add_argument("--workers", default=None, metavar="HOST:PORT,...",
                   help="distribute Kripke builds over running "
                        "'repro worker' daemons instead of building "
                        "locally")
    p.add_argument("--checkpoint", default=None,
                   help="directory for periodic state-space snapshots; "
                        "rerunning with the same directory resumes an "
                        "interrupted build")
    p.add_argument("--cache", default=None, metavar="DIR",
                   help="build-cache directory serving completed "
                        "state-space explorations for unchanged netlists "
                        "(default: $REPRO_CACHE_DIR or "
                        "~/.cache/repro/codegen)")
    p.add_argument("--no-cache", action="store_true",
                   help="re-explore the state space instead of reading "
                        "the cache")
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser("export", help="emit Verilog / BLIF / SMV / DOT")
    p.add_argument("--format", choices=("verilog", "blif", "smv", "dot"),
                   required=True)
    p.add_argument("--config", default="active")
    p.add_argument("-o", "--output", default=None)
    p.set_defaults(func=cmd_export)

    p = sub.add_parser("bound", help="structural liveness + throughput bound")
    p.add_argument("--config", default="lazy")
    p.set_defaults(func=cmd_bound)

    p = sub.add_parser("dmg", help="print the Fig. 1 DMG (DOT, marked)")
    p.set_defaults(func=cmd_dmg)

    p = sub.add_parser(
        "lint",
        help="statically analyze the built-in designs (netlist + elastic "
             "protocol rules); nonzero exit on new errors",
    )
    p.add_argument("targets", nargs="*",
                   help="lint targets (default: every built-in design; "
                        "see --list)")
    p.add_argument("--list", action="store_true",
                   help="print the available targets and exit")
    p.add_argument("--file", action="append", default=None, metavar="PATH",
                   help="re-parse this exported .blif/.v file and lint the "
                        "reconstructed netlist; findings carry file/line/"
                        "column anchors (repeatable, mixes with targets)")
    p.add_argument("--explain", default=None, metavar="RULEID",
                   help="print the catalog entry for one rule; with "
                        "targets or --file also renders that rule's "
                        "findings and their witnesses (exit 0)")
    p.add_argument("--json", default=None,
                   help="write the deterministic JSON findings here")
    p.add_argument("--sarif", default=None,
                   help="write the SARIF 2.1.0 log here")
    p.add_argument("--baseline", default=None,
                   help="suppress the fingerprints recorded in this "
                        "baseline file before deciding the exit code")
    p.add_argument("--write-baseline", default=None,
                   help="record every finding's fingerprint to this file "
                        "(accepting the current findings as intentional)")
    p.add_argument("--cache", default=None, metavar="DIR",
                   help="build-cache directory serving netlist findings "
                        "for unchanged designs (default: $REPRO_CACHE_DIR "
                        "or ~/.cache/repro/codegen)")
    p.add_argument("--no-cache", action="store_true",
                   help="re-evaluate every rule instead of reading the "
                        "findings cache")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser(
        "build",
        help="pre-compile campaign netlists into the codegen build cache",
    )
    p.add_argument("targets", nargs="*",
                   help="campaign targets to compile (default: all of "
                        "them; with --stats/--clear alone, none)")
    p.add_argument("--cache", default=None, metavar="DIR",
                   help="build-cache directory (default: $REPRO_CACHE_DIR "
                        "or ~/.cache/repro/codegen)")
    p.add_argument("--stats", action="store_true",
                   help="print cache entries, bytes, and the process "
                        "hit/miss tallies")
    p.add_argument("--clear", action="store_true",
                   help="delete every cached artifact first")
    p.set_defaults(func=cmd_build)

    p = sub.add_parser(
        "inject", help="run a fault-injection campaign with online monitors"
    )
    p.add_argument("--netlist", default="dual_ehb",
                   help="campaign target (a controller name, or 'processor' "
                        "for the behavioural Sect. 7 pipeline)")
    p.add_argument("--fault", default="stuck0,stuck1",
                   help="comma-separated RTL fault kinds "
                        "(stuck0, stuck1, flip)")
    p.add_argument("--cycles", type=int, default=400)
    p.add_argument("--seed", type=int, default=2007)
    p.add_argument("--lanes", type=int, default=1,
                   help="injections simulated per bit-parallel pass "
                        "(64 packs one fault per lane of a machine word)")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes sharding the lane chunks; the "
                        "report is byte-identical for any lanes/jobs split")
    p.add_argument("--report", default=None,
                   help="write the JSON campaign report here")
    p.add_argument("--shrink", action="store_true",
                   help="also ddmin-shrink the detected faults to a minimal "
                        "failing schedule and print its trace")
    p.add_argument("--metrics", action="store_true",
                   help="attach run metadata (wall time, verdict tallies, "
                        "lane utilization) to the report and print it; "
                        "without this flag the report stays byte-identical "
                        "to the goldens")
    p.add_argument("--degradation", action="store_true",
                   help="attach the lane-quarantine summary of the "
                        "graceful-degradation harness to the report "
                        "(a 'degradation' key next to 'metrics'); without "
                        "this flag the report stays byte-identical to the "
                        "goldens")
    p.add_argument("--profile", action="store_true",
                   help="attach the fault-free performance baseline of "
                        "the target (the 'repro profile' report) as a "
                        "'profile' key; without this flag the report "
                        "stays byte-identical to the goldens")
    p.add_argument("--progress", action="store_true",
                   help="print progress lines while the sweep runs")
    p.add_argument("--checkpoint", default=None,
                   help="directory that receives one atomic file per "
                        "classified chunk; a rerun with the same directory "
                        "skips completed chunks and reproduces the "
                        "uninterrupted report byte for byte")
    p.add_argument("--resume", default=None,
                   help="continue from an existing checkpoint directory "
                        "(errors if no manifest is present; implies "
                        "--checkpoint)")
    p.add_argument("--shard-timeout", type=float, default=None,
                   help="per-chunk deadline in seconds when --jobs > 1; a "
                        "worker that blows it is killed and its chunk "
                        "requeued")
    p.add_argument("--max-retries", type=int, default=2,
                   help="how many times a crashed/hung/erroring chunk is "
                        "requeued before the campaign fails (default 2)")
    p.add_argument("--backend", choices=("batch", "compiled"),
                   default="batch",
                   help="lane-parallel engine: the interpreted batch "
                        "kernel, or the cached compiled-module backend; "
                        "reports are byte-identical either way")
    p.add_argument("--cache", default=None, metavar="DIR",
                   help="build-cache directory for --backend compiled "
                        "(default: $REPRO_CACHE_DIR or "
                        "~/.cache/repro/codegen)")
    p.add_argument("--workers", default=None, metavar="HOST:PORT,...",
                   help="shard chunks over running 'repro worker' "
                        "socket daemons (replaces --jobs); the merged "
                        "report is byte-identical to a local run")
    p.add_argument("--fabric-checkpoint", default=None, metavar="DIR",
                   help="checkpoint directory on storage shared with a "
                        "standby coordinator: chunks persist as they "
                        "complete, and a replacement coordinator "
                        "pointed here re-adopts surviving workers and "
                        "the completed work (same as --checkpoint)")
    p.set_defaults(func=cmd_inject)

    p = sub.add_parser(
        "worker",
        help="serve campaign/verify work units to a fabric coordinator "
             "over a socket",
    )
    p.add_argument("--listen", default="127.0.0.1:0", metavar="HOST:PORT",
                   help="bind address (port 0 picks a free port, printed "
                        "on startup)")
    p.add_argument("--shard-timeout", type=float, default=None,
                   help="per-unit compute deadline; a unit that blows it "
                        "kills the worker process loudly (exit 17) so "
                        "the coordinator requeues instead of waiting on "
                        "a zombie")
    p.add_argument("--once", action="store_true",
                   help="exit after serving one coordinator connection "
                        "(tests, one-shot campaigns)")
    p.set_defaults(func=cmd_worker)

    p = sub.add_parser(
        "trace",
        help="record waveforms (VCD) and structured events from a simulation",
    )
    p.add_argument("--config", default="pipeline",
                   help="a Fig. 9 configuration name, or 'pipeline' for the "
                        "deterministic Fig. 5 dual-EB chain")
    p.add_argument("--cycles", type=int, default=64)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--vcd", default=None,
                   help="write GTKWave-viewable waveforms here")
    p.add_argument("--events", default=None,
                   help="write the JSONL event stream here")
    p.add_argument("--buffer", type=int, default=65536,
                   help="ring-buffer capacity (oldest events evicted)")
    p.add_argument("--include-idle", action="store_true",
                   help="also record idle channel-cycles")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "stats", help="print the metrics snapshot of one simulation"
    )
    p.add_argument("--config", default="active")
    p.add_argument("--cycles", type=int, default=5000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--prometheus", action="store_true",
                   help="emit the Prometheus text exposition format "
                        "(0.0.4) instead of the human-readable dump")
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser(
        "profile",
        help="cycle accounting, stall attribution and model comparison "
             "for one design (nonzero exit when --compare-model "
             "diverges beyond tolerance)",
    )
    p.add_argument("--design", default="active",
                   help="an RTL campaign target (dual_ehb, early_join, "
                        "...), a Fig. 9 configuration, 'pipeline' (the "
                        "Fig. 5 chain) or 'processor' (see --list)")
    p.add_argument("--backend", choices=("auto", "scalar", "batch",
                                         "compiled"),
                   default="auto",
                   help="execution engine for RTL designs (auto = "
                        "scalar); behavioural designs always run on the "
                        "network simulator, and the report is "
                        "byte-identical across backends")
    p.add_argument("--cycles", type=int, default=2000)
    p.add_argument("--seed", type=int, default=2007)
    p.add_argument("--compare-model", action="store_true",
                   help="also run the timed DMG abstraction: name the "
                        "critical cycle, predict the throughput, and "
                        "flag divergence beyond --tolerance")
    p.add_argument("--tolerance", type=float, default=0.15,
                   help="relative divergence accepted by --compare-model "
                        "(default 0.15)")
    p.add_argument("--json", default=None,
                   help="write the deterministic JSON report here")
    p.add_argument("--list", action="store_true",
                   help="print the available designs and exit")
    p.add_argument("--cache", default=None, metavar="DIR",
                   help="build-cache directory for --backend compiled "
                        "(default: $REPRO_CACHE_DIR or "
                        "~/.cache/repro/codegen)")
    p.add_argument("--no-cache", action="store_true",
                   help="compile without the build cache")
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser(
        "fuzz",
        help="fuzz random system specs through the differential oracle "
             "(nonzero exit on findings)",
    )
    p.add_argument("--seed", type=int, default=0,
                   help="campaign seed; output is byte-identical across "
                        "runs for one seed (unless --budget cuts it short)")
    p.add_argument("--specs", type=int, default=20,
                   help="how many specs to generate and cross-check")
    p.add_argument("--max-blocks", type=int, default=48,
                   help="upper bound on blocks per generated spec")
    p.add_argument("--cycles", type=int, default=96,
                   help="simulated cycles per oracle stage")
    p.add_argument("--lanes", type=int, default=8,
                   help="randomized environment schedules compared "
                        "per spec in the gate-level differential")
    p.add_argument("--budget", type=float, default=None,
                   help="wall-clock budget in seconds; the campaign "
                        "stops early (and says so) when it runs out")
    p.add_argument("--corpus", default=None, metavar="DIR",
                   help="write each shrunk counterexample here as a "
                        "replayable JSON entry")
    p.add_argument("--replay", default=None, metavar="DIR",
                   help="replay a corpus directory instead of fuzzing; "
                        "nonzero exit when an entry stops reproducing")
    p.add_argument("--mutate", default=None, metavar="NAME",
                   help="plant a named seeded bug in every behavioural "
                        "network (e.g. broken-early-join); the oracle "
                        "must catch it")
    p.add_argument("--json", default=None,
                   help="write the deterministic JSON report here")
    p.add_argument("--no-shrink", action="store_true",
                   help="keep findings at full size (skip spec-level "
                        "ddmin)")
    p.add_argument("--no-gates", action="store_true",
                   help="skip the gate-level scalar/batch/compiled "
                        "differential stage")
    p.add_argument("--no-verify", action="store_true",
                   help="skip the bounded Kripke/CTL spot check")
    p.add_argument("--progress", action="store_true",
                   help="print progress lines to stderr while fuzzing")
    p.add_argument("--cache", default=None, metavar="DIR",
                   help="build-cache directory for compiled modules and "
                        "Kripke structures (default: $REPRO_CACHE_DIR or "
                        "~/.cache/repro/codegen)")
    p.add_argument("--no-cache", action="store_true",
                   help="run without the build cache")
    p.set_defaults(func=cmd_fuzz)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
