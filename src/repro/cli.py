"""Command-line interface to the elastic-circuit framework.

Usage (after ``pip install -e .``)::

    python -m repro table1   [--cycles 10000] [--seed 2007]
    python -m repro simulate --config active [--cycles 5000] [--seed 0]
    python -m repro verify   [--design diamond|early|vl]
    python -m repro export   --format verilog|blif|smv|dot
                             [--config active] [-o out.v]
    python -m repro bound    [--config lazy]
    python -m repro dmg

mirroring the paper's framework, which generated simulation, synthesis
and verification models of the same controllers from one description.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.casestudy.fig9 import Config, build_fig9_spec
from repro.casestudy.table1 import format_table, run_config, run_table1

_CONFIGS = {c.name.lower(): c for c in Config}


def _config(name: str) -> Config:
    try:
        return _CONFIGS[name.lower()]
    except KeyError:
        raise SystemExit(
            f"unknown configuration {name!r}; pick one of {sorted(_CONFIGS)}"
        )


def cmd_table1(args: argparse.Namespace) -> int:
    rows = run_table1(cycles=args.cycles, seed=args.seed)
    print(format_table(rows))
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    from repro.synthesis.elaborate import to_behavioral

    spec = build_fig9_spec(_config(args.config), seed=args.seed)
    net = to_behavioral(spec, seed=args.seed)
    net.run(args.cycles)
    print(net.report())
    print(f"\nsystem throughput: {net.throughput('Din->S'):.3f} transfers/cycle")
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    from repro.verif.properties import verify_netlist
    from repro.verif.testbenches import DESIGNS, diamond_with_feedback

    nl, chans, fairness = diamond_with_feedback(**DESIGNS[args.design])
    result = verify_netlist(nl, chans, fairness=fairness, max_states=2_000_000)
    print(result)
    return 0 if result.ok else 1


def cmd_export(args: argparse.Namespace) -> int:
    from repro.rtl.export import channel_specs_smv, to_blif, to_smv, to_verilog
    from repro.synthesis.dot import spec_to_dot
    from repro.synthesis.elaborate import to_gates

    spec = build_fig9_spec(_config(args.config))
    if args.format == "dot":
        text = spec_to_dot(spec)
    else:
        elab = to_gates(spec, include_env=True, as_latches=True)
        if args.format == "verilog":
            text = to_verilog(elab.netlist, module="fig9_control")
        elif args.format == "blif":
            text = to_blif(elab.netlist, model="fig9_control")
        else:
            specs = channel_specs_smv(elab.channels.values())
            fairness = [f"{sig} = TRUE" for sig in elab.env_inputs]
            text = to_smv(elab.netlist, specs=specs, fairness=fairness)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {len(text.splitlines())} lines to {args.output}")
    else:
        print(text, end="")
    return 0


def cmd_bound(args: argparse.Namespace) -> int:
    from repro.synthesis.abstraction import check_liveness, throughput_bound

    spec = build_fig9_spec(_config(args.config))
    live = check_liveness(spec)
    bound = throughput_bound(spec, mean_latency={"M1": 3.6, "M2": 1.5})
    print(f"configuration: {args.config}")
    print(f"structurally live: {live}")
    print(f"lazy throughput bound (min cycle ratio): {bound} = {float(bound):.3f}")
    return 0


def cmd_dmg(args: argparse.Namespace) -> int:
    from repro.core.dmg import fig1_dmg
    from repro.core.export import to_dot

    g = fig1_dmg()
    m = g.initial_marking
    for node in ("n2", "n1", "n7"):
        m = g.fire_any(node, m)
    print(to_dot(g, m), end="")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Elastic circuits with early evaluation and token counterflow",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("table1", help="regenerate the paper's Table 1")
    p.add_argument("--cycles", type=int, default=10_000)
    p.add_argument("--seed", type=int, default=2007)
    p.set_defaults(func=cmd_table1)

    p = sub.add_parser("simulate", help="simulate one Fig. 9 configuration")
    p.add_argument("--config", default="active")
    p.add_argument("--cycles", type=int, default=5000)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("verify", help="model check a controller netlist")
    p.add_argument("--design", choices=("diamond", "early", "vl"),
                   default="early")
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser("export", help="emit Verilog / BLIF / SMV / DOT")
    p.add_argument("--format", choices=("verilog", "blif", "smv", "dot"),
                   required=True)
    p.add_argument("--config", default="active")
    p.add_argument("-o", "--output", default=None)
    p.set_defaults(func=cmd_export)

    p = sub.add_parser("bound", help="structural liveness + throughput bound")
    p.add_argument("--config", default="lazy")
    p.set_defaults(func=cmd_bound)

    p = sub.add_parser("dmg", help="print the Fig. 1 DMG (DOT, marked)")
    p.set_defaults(func=cmd_dmg)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
