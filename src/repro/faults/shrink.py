"""Greedy delta-debugging of failing injection schedules.

Given a schedule of injections that makes some predicate fail (an
online monitor fires), :func:`shrink_schedule` minimises it with the
classic ddmin loop -- drop ever-smaller chunks, keeping any reduced
schedule that still fails -- and then tightens each survivor's activity
window.  The result is typically the single injection that actually
triggers the failure, with the benign riders stripped away.

:func:`render_failure` replays a (minimised) schedule and renders the
cycles up to the first violation through :mod:`repro.verif.traces`, so
a campaign failure reads like any other counterexample trace.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Sequence, TypeVar

from repro.faults.campaign import CampaignHarness
from repro.faults.models import Injection
from repro.verif.traces import format_trace

FaultT = TypeVar("FaultT")
#: A predicate: does this schedule still provoke a failure?
Fails = Callable[[Sequence[FaultT]], bool]


def _safe(fails: Fails) -> Fails:
    """Treat a predicate that errors (or flakes) as "does not fail".

    During reduction the shrinker probes *candidate* schedules the
    campaign never ran; a flaky predicate -- one whose failure stops
    reproducing, or that raises on a pathological candidate -- must
    only cost the shrinker that one reduction step.  The last schedule
    the predicate *confirmed* failing is always what gets returned.
    """

    def safe(candidate: Sequence[FaultT]) -> bool:
        try:
            return bool(fails(candidate))
        except Exception:
            return False

    return safe


def shrink_schedule(
    schedule: Sequence[FaultT],
    fails: Fails,
    minimise_windows: bool = True,
) -> List[FaultT]:
    """Minimise a failing schedule (ddmin, then per-fault window tightening).

    ``schedule`` must fail under ``fails`` (ValueError otherwise); the
    returned subset still fails and is 1-minimal with respect to chunk
    removal.  With ``minimise_windows`` each surviving fault is also
    tried with ``duration=1`` and ``cycle=0`` (kept only if the
    schedule still fails), turning long windows into point injections.

    Each reduction round probes *every* aligned chunk removal and takes
    the best failing candidate by ``(length, canonical labels)``, so
    ties between equal-sized reductions break deterministically: the
    same failing set minimises to the same schedule regardless of the
    order the campaign happened to discover it in.

    Robust to flaky predicates: a candidate probe that raises or stops
    reproducing is simply not taken, so the result is always the last
    schedule the predicate confirmed failing -- never a crash.
    """
    current = list(schedule)
    if not fails(current):
        raise ValueError("schedule does not fail; nothing to shrink")
    fails = _safe(fails)
    chunk = max(1, len(current) // 2)
    while chunk >= 1:
        reduced = True
        while reduced:
            reduced = False
            best = None
            for i in range(0, len(current), chunk):
                candidate = current[:i] + current[i + chunk:]
                if not candidate or not fails(candidate):
                    continue
                key = (len(candidate), _canon(candidate))
                if best is None or key < best[0]:
                    best = (key, candidate)
            if best is not None:
                current = best[1]
                reduced = True
        chunk //= 2
    if minimise_windows:
        current = [_tighten(current, k, fails) for k in range(len(current))]
    return current


def _canon(schedule: Sequence[FaultT]) -> tuple:
    """A deterministic tie-break key: each fault's label (or repr)."""
    return tuple(
        fault.label() if hasattr(fault, "label") else repr(fault)
        for fault in schedule
    )


def _tighten(
    schedule: List[FaultT], index: int, fails: Fails
) -> FaultT:
    """Shrink one fault's activity window as far as the failure allows."""
    fault = schedule[index]

    def keeps_failing(candidate: FaultT) -> bool:
        trial = list(schedule)
        trial[index] = candidate
        if fails(trial):
            schedule[index] = candidate
            return True
        return False

    duration = getattr(fault, "duration", None)
    if duration is None:
        # Permanent fault: try the single-cycle transient version first.
        for d in (1, 2, 4):
            if keeps_failing(dataclasses.replace(fault, duration=d)):
                break
    elif duration > 1:
        keeps_failing(dataclasses.replace(fault, duration=1))
    fault = schedule[index]
    if getattr(fault, "cycle", 0) > 0 and getattr(fault, "duration", 1) is None:
        keeps_failing(dataclasses.replace(fault, cycle=0))
    return schedule[index]


def failing_predicate(harness: CampaignHarness) -> Fails:
    """The standard predicate: any online monitor fires on the schedule."""

    def fails(schedule: Sequence[Injection]) -> bool:
        violation, _, _ = harness.run_schedule(schedule)
        return violation is not None

    return fails


def render_failure(
    harness: CampaignHarness, schedule: Sequence[Injection]
) -> str:
    """Replay ``schedule`` and render the failing prefix as a trace."""
    violation, steps, _ = harness.run_schedule(schedule, record=True)
    header = ["injections:"]
    header.extend(f"  {inj.label()}" for inj in schedule)
    if violation is None:
        header.append("no violation observed")
        return "\n".join(header)
    header.append(f"violation: {violation}")
    assert steps is not None
    return "\n".join(header) + "\n" + format_trace(steps)
