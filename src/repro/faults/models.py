"""Fault models for both abstraction layers.

Two families, mirroring the two controller implementations:

* **RTL faults** (:class:`Injection`) -- stuck-at-0/1 and transient
  bit-flips on named nets of a :class:`~repro.rtl.netlist.Netlist`,
  applied through the net-override hook of
  :class:`~repro.rtl.simulator.TwoPhaseSimulator` by
  :class:`RtlFaultInjector`;
* **behavioural faults** -- wire glitches on settled
  :class:`~repro.elastic.channel.Channel` wires (token drop, spurious
  token/anti-token, handshake glitches on any of ``{V+, S+, V−, S−}``,
  :class:`ChannelFault` + :class:`WireSaboteur`) and state upsets
  inside :class:`~repro.elastic.behavioral.ElasticBuffer` instances
  (token duplication/loss, :class:`BufferFault` + :class:`StateSaboteur`).

Every fault is a frozen, ordered record so that campaign sweeps and
JSON reports are deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.elastic.behavioral import ElasticBuffer
from repro.elastic.channel import Channel
from repro.rtl.logic import Value, lnot
from repro.rtl.simulator import Override, TwoPhaseSimulator

#: RTL fault kinds: permanent stuck-ats and the transient bit-flip.
RTL_FAULT_KINDS = ("stuck0", "stuck1", "flip")

#: Behavioural wire-glitch kinds.  ``token_drop`` and ``spurious_anti``
#: are the protocol-meaningful aliases of the raw glitches on V+ / V−.
CHANNEL_FAULT_KINDS = (
    "token_drop",      # V+ 1 -> 0: an offered token vanishes
    "spurious_token",  # V+ 0 -> 1: a token appears out of thin air
    "spurious_anti",   # V- 0 -> 1: an anti-token appears out of thin air
    "anti_drop",       # V- 1 -> 0: an offered anti-token vanishes
    "glitch_sp",       # S+ inverted: handshake glitch on the stop wire
    "glitch_sn",       # S- inverted: dual handshake glitch
)

#: Buffer state-upset kinds.
BUFFER_FAULT_KINDS = (
    "token_dup",   # the head token is silently duplicated
    "token_loss",  # a stored token is silently discarded
)


@dataclass(frozen=True, order=True)
class Injection:
    """One RTL fault: a net, a kind, and an activity window.

    ``stuck0``/``stuck1`` force the net to a constant; ``flip`` inverts
    the fault-free value.  The fault is active from ``cycle`` for
    ``duration`` cycles (``None`` = until the end of the run, the usual
    choice for stuck-ats; flips default to single-cycle transients via
    :func:`transient_flip`).
    """

    net: str
    kind: str
    cycle: int = 0
    duration: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in RTL_FAULT_KINDS:
            raise ValueError(f"unknown RTL fault kind {self.kind!r}")
        if self.cycle < 0:
            raise ValueError("injection cycle must be >= 0")
        if self.duration is not None and self.duration < 1:
            raise ValueError("duration must be >= 1 (or None for permanent)")

    def active(self, time: int) -> bool:
        """Whether the fault corrupts the net during cycle ``time``."""
        if time < self.cycle:
            return False
        return self.duration is None or time < self.cycle + self.duration

    def override(self) -> Override:
        """The net override implementing this fault."""
        if self.kind == "stuck0":
            return 0
        if self.kind == "stuck1":
            return 1
        return lnot

    def label(self) -> str:
        window = "" if self.duration is None else f"+{self.duration}"
        return f"{self.kind}({self.net})@{self.cycle}{window}"


def transient_flip(net: str, cycle: int, duration: int = 1) -> Injection:
    """A single-event upset: invert ``net`` for ``duration`` cycles."""
    return Injection(net, "flip", cycle, duration)


class RtlFaultInjector:
    """Replays an injection schedule against a two-phase simulator.

    Wraps (and resets) a :class:`TwoPhaseSimulator`; before each cycle
    the simulator's override map is rebuilt from the schedule entries
    active at that cycle, so arbitrary overlapping stuck-ats and
    transients compose (later schedule entries win on the same net).
    """

    def __init__(
        self, sim: TwoPhaseSimulator, schedule: Sequence[Injection] = ()
    ) -> None:
        self.sim = sim
        self.schedule: List[Injection] = list(schedule)
        unknown = {
            i.net for i in self.schedule if i.net not in sim.netlist.signals()
        }
        if unknown:
            raise ValueError(f"injection sites not in netlist: {sorted(unknown)}")

    def reset(self, schedule: Optional[Sequence[Injection]] = None) -> None:
        """Restore the reset state; optionally replace the schedule."""
        if schedule is not None:
            self.schedule = list(schedule)
        self.sim.reset()
        self.sim.overrides = {}

    def overrides_at(self, time: int) -> Dict[str, Override]:
        return {
            inj.net: inj.override()
            for inj in self.schedule
            if inj.active(time)
        }

    def cycle(self, inputs: Optional[Mapping[str, Value]] = None) -> Dict[str, Value]:
        """Advance one cycle with the schedule's overrides applied."""
        self.sim.overrides = self.overrides_at(self.sim.time)
        return self.sim.cycle(inputs)


# ----------------------------------------------------------------------
# Behavioural-layer faults
# ----------------------------------------------------------------------
@dataclass(frozen=True, order=True)
class ChannelFault:
    """A wire glitch on one behavioural channel (see CHANNEL_FAULT_KINDS)."""

    channel: str
    kind: str
    cycle: int
    duration: int = 1

    def __post_init__(self) -> None:
        if self.kind not in CHANNEL_FAULT_KINDS:
            raise ValueError(f"unknown channel fault kind {self.kind!r}")
        if self.cycle < 0 or self.duration < 1:
            raise ValueError("need cycle >= 0 and duration >= 1")

    def active(self, time: int) -> bool:
        return self.cycle <= time < self.cycle + self.duration

    def label(self) -> str:
        return f"{self.kind}({self.channel})@{self.cycle}+{self.duration}"

    def apply(self, ch: Channel) -> bool:
        """Corrupt the settled wires; returns True if anything changed."""
        if self.kind == "token_drop":
            if ch.vp != 1:
                return False
            ch.force("vp", 0)
            ch.data = None
            return True
        if self.kind == "spurious_token":
            if ch.vp != 0:
                return False
            ch.force("vp", 1)
            return True
        if self.kind == "spurious_anti":
            if ch.vn != 0:
                return False
            ch.force("vn", 1)
            return True
        if self.kind == "anti_drop":
            if ch.vn != 1:
                return False
            ch.force("vn", 0)
            return True
        wire = self.kind.removeprefix("glitch_")
        current = getattr(ch, wire)
        flipped = lnot(current)
        ch.force(wire, flipped)
        return flipped != current


@dataclass(frozen=True, order=True)
class BufferFault:
    """A state upset inside a named behavioural elastic buffer."""

    buffer: str
    kind: str
    cycle: int

    def __post_init__(self) -> None:
        if self.kind not in BUFFER_FAULT_KINDS:
            raise ValueError(f"unknown buffer fault kind {self.kind!r}")

    def label(self) -> str:
        return f"{self.kind}({self.buffer})@{self.cycle}"

    def apply(self, buf: ElasticBuffer) -> bool:
        """Mutate the buffer state; returns True if anything changed.

        Either kind needs a stored token to act on.  A duplication that
        overflows the capacity is still injected -- the buffer's own
        occupancy-range check (the behavioural encoding monitor) is
        then expected to flag it.
        """
        if buf.count <= 0:
            return False
        if self.kind == "token_dup":
            buf.count += 1
            buf.data.append(buf.data[-1])
        else:  # token_loss
            buf.count -= 1
            buf.data.pop()
        return True


class WireSaboteur:
    """An :meth:`ElasticNetwork.add_saboteur` hook applying ChannelFaults."""

    def __init__(self, faults: Iterable[ChannelFault]) -> None:
        self.faults = sorted(faults)
        self.applied: List[ChannelFault] = []

    def __call__(self, cycle: int, channels: Mapping[str, Channel]) -> None:
        for fault in self.faults:
            if fault.active(cycle) and fault.apply(channels[fault.channel]):
                self.applied.append(fault)


class StateSaboteur:
    """An :meth:`ElasticNetwork.add_saboteur` hook applying BufferFaults.

    Runs post-settle (the wires already reflect the pre-fault state) and
    pre-commit, so the commit arithmetic applies this cycle's events on
    top of the upset state -- the cycle-level picture of an SEU in the
    occupancy latches.
    """

    def __init__(
        self, faults: Iterable[BufferFault], buffers: Mapping[str, ElasticBuffer]
    ) -> None:
        self.faults = sorted(faults)
        self.buffers = dict(buffers)
        self.applied: List[BufferFault] = []
        unknown = {f.buffer for f in self.faults} - set(self.buffers)
        if unknown:
            raise ValueError(f"unknown buffers: {sorted(unknown)}")

    def __call__(self, cycle: int, channels: Mapping[str, Channel]) -> None:
        for fault in self.faults:
            if fault.cycle == cycle and fault.apply(self.buffers[fault.buffer]):
                self.applied.append(fault)
