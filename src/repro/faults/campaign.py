"""Fault-injection campaigns with online monitors and JSON reports.

A campaign sweeps (fault site x fault kind x injection cycle) over a
target, runs every injection against a seeded, protocol-legal random
environment, and classifies each fault:

* ``detected`` -- an online monitor fired (the report records the
  monitor's name and the first detection cycle);
* ``latent`` -- no monitor fired but the run diverged from the golden
  (fault-free) reference -- internal state corruption that never
  reached an observable rule;
* ``undetected`` -- the run is indistinguishable from the golden run
  (the fault was logically masked).

Reports are deterministic: the same seed reproduces the same stimulus,
the same sweep order and byte-for-byte the same JSON.

Two campaign flavours:

* :func:`run_campaign` -- RTL stuck-at/flip faults on the gate-level
  controller targets of :mod:`repro.faults.targets`;
* :func:`run_processor_campaign` -- behavioural channel glitches and
  buffer state upsets on the Sect. 7 elastic processor.

RTL campaigns scale two ways, composable and both bit-identical to the
sequential sweep: ``lanes > 1`` classifies up to 64 injections per
simulation on the bit-parallel kernel
(:class:`~repro.faults.batch.BatchCampaignHarness`), and ``jobs > 1``
shards the injection chunks over the crash-tolerant
:class:`~repro.resilience.ShardSupervisor` (dead/hung workers are
detected and their chunks requeued), merging results back into sweep
order.  A ``checkpoint`` directory makes either flavour resumable: each
classified chunk is persisted atomically, and a rerun pointed at the
same directory skips completed chunks and still emits byte-for-byte the
same JSON report as an uninterrupted run.
"""

from __future__ import annotations

import itertools
import json
import random
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.casestudy.processor import ProcessorConfig, build_processor
from repro.elastic.behavioral import ElasticBuffer
from repro.elastic.protocol import ProtocolViolation
from repro.faults.models import (
    BUFFER_FAULT_KINDS,
    CHANNEL_FAULT_KINDS,
    BufferFault,
    ChannelFault,
    Injection,
    RtlFaultInjector,
    StateSaboteur,
    WireSaboteur,
)
from repro.faults.monitors import (
    GoldenMonitor,
    Monitor,
    Violation,
    buffer_monitors,
    channel_monitors,
)
from repro.faults.targets import TARGETS, RtlTarget
from repro.resilience.checkpoint import CheckpointStore
from repro.resilience.supervisor import ShardSupervisor, SupervisorConfig
from repro.rtl.logic import Value
from repro.rtl.simulator import TwoPhaseSimulator
from repro.verif.traces import TraceStep

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.metrics import MetricsRegistry


@dataclass(frozen=True)
class CampaignConfig:
    """Sweep parameters for an RTL campaign."""

    cycles: int = 400
    seed: int = 2007
    kinds: Tuple[str, ...] = ("stuck0", "stuck1")
    injection_cycles: Tuple[int, ...] = (0,)
    flip_duration: int = 1
    #: Try to prove faults the sweep missed equivalent to the fault-free
    #: circuit (exhaustive (state, input) equivalence over the DUT cone).
    untestable_analysis: bool = True


@dataclass(frozen=True)
class FaultOutcome:
    """The verdict for one injected fault."""

    fault: str
    status: str  # "detected" | "latent" | "undetected"
    monitor: Optional[str] = None
    detection_cycle: Optional[int] = None
    detail: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "fault": self.fault,
            "status": self.status,
            "monitor": self.monitor,
            "detection_cycle": self.detection_cycle,
            "detail": self.detail,
        }


@dataclass
class CampaignReport:
    """All outcomes of one campaign, with deterministic serialisation."""

    target: str
    seed: int
    cycles: int
    outcomes: List[FaultOutcome] = field(default_factory=list)
    #: optional run metadata (wall time, cycles/sec, ...), absent from
    #: the serialised report unless set -- the default report stays
    #: byte-identical to the goldens.
    metrics: Optional[Dict[str, object]] = None
    #: optional lane-quarantine summary of the graceful-degradation
    #: harness (opt in via ``run_campaign(..., degradation=True)``);
    #: absent from the serialised report unless set.
    degradation: Optional[Dict[str, object]] = None
    #: optional fault-free performance baseline of the target (opt in
    #: via ``run_campaign(..., profile=True)``): the full
    #: :mod:`repro.obs.analyze` report dict; absent from the
    #: serialised report unless set.
    profile: Optional[Dict[str, object]] = None

    def counts(self) -> Dict[str, int]:
        counts = {"detected": 0, "latent": 0, "undetected": 0, "untestable": 0}
        for outcome in self.outcomes:
            counts[outcome.status] = counts.get(outcome.status, 0) + 1
        return counts

    @property
    def coverage(self) -> float:
        """Detected fraction of the *testable* faults (ATPG convention:
        faults proven equivalent to the fault-free circuit leave the
        denominator)."""
        counts = self.counts()
        testable = len(self.outcomes) - counts["untestable"]
        if testable <= 0:
            return 1.0
        return counts["detected"] / testable

    def detected(self) -> List[FaultOutcome]:
        return [o for o in self.outcomes if o.status == "detected"]

    def to_dict(self) -> Dict[str, object]:
        d: Dict[str, object] = {
            "target": self.target,
            "seed": self.seed,
            "cycles": self.cycles,
            "counts": self.counts(),
            "coverage": round(self.coverage, 6),
            "faults": [o.to_dict() for o in self.outcomes],
        }
        if self.metrics is not None:
            d["metrics"] = self.metrics
        if self.degradation is not None:
            d["degradation"] = self.degradation
        if self.profile is not None:
            d["profile"] = self.profile
        return d

    def to_json(self) -> str:
        """Deterministic JSON (same seed => identical bytes)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def table(self) -> str:
        """The coverage table: monitor + first-detection cycle per fault."""
        width = max((len(o.fault) for o in self.outcomes), default=10)
        lines = [
            f"fault campaign [{self.target}] seed={self.seed} "
            f"cycles={self.cycles}",
            f"{'fault':{width}}  {'status':10}  {'detected by':28}  cycle",
        ]
        for o in self.outcomes:
            monitor = o.monitor or "-"
            cycle = "-" if o.detection_cycle is None else str(o.detection_cycle)
            lines.append(
                f"{o.fault:{width}}  {o.status:10}  {monitor:28}  {cycle}"
            )
        c = self.counts()
        testable = len(self.outcomes) - c["untestable"]
        lines.append(
            f"coverage: {c['detected']}/{testable} testable faults detected "
            f"({100.0 * self.coverage:.1f}%), {c['latent']} latent, "
            f"{c['undetected']} undetected, {c['untestable']} untestable"
        )
        return "\n".join(lines)


def make_stimulus(
    free_inputs: Sequence[str], cycles: int, seed: int
) -> List[Dict[str, int]]:
    """Seeded free-input bits, identical for golden and faulty runs."""
    rng = random.Random(seed)
    return [
        {name: rng.getrandbits(1) for name in free_inputs}
        for _ in range(cycles)
    ]


class CampaignHarness:
    """One target + one stimulus: golden reference and per-fault runs."""

    def __init__(self, target: RtlTarget, config: CampaignConfig) -> None:
        self.target = target
        self.config = config
        self.stimulus = make_stimulus(
            target.free_inputs, config.cycles, config.seed
        )
        self.sim = TwoPhaseSimulator(target.netlist)
        self.injector = RtlFaultInjector(self.sim)
        self.golden: List[Dict[str, Value]] = []
        self.golden_final: Dict[str, Value] = {}
        self._record_golden()

    def _record_golden(self) -> None:
        observe = self.target.observe
        self.injector.reset([])
        for inputs in self.stimulus:
            values = self.injector.cycle(inputs)
            self.golden.append({w: values.get(w) for w in observe})
        self.golden_final = dict(self.sim.state)

    def monitors(self) -> List[Monitor]:
        """A fresh monitor bank (protocol + EB state + golden lockstep)."""
        bank = channel_monitors(self.target.channels)
        bank.extend(buffer_monitors(self.target.ebs))
        bank.append(GoldenMonitor(self.target.observe, self.golden))
        return bank

    def run_schedule(
        self, schedule: Sequence[Injection], record: bool = False
    ) -> Tuple[Optional[Violation], Optional[List[TraceStep]], Dict[str, Value]]:
        """Run one injection schedule to first detection (or the horizon).

        Returns ``(violation, steps, final_state)`` where ``steps`` is
        the rendered trace up to and including the detection cycle when
        ``record`` is set.
        """
        self.injector.reset(schedule)
        bank = self.monitors()
        steps: Optional[List[TraceStep]] = [] if record else None
        for t, inputs in enumerate(self.stimulus):
            values = self.injector.cycle(inputs)
            if steps is not None:
                signals = {
                    w: (1 if values.get(w) == 1 else 0)
                    for w in self.target.observe
                }
                steps.append(TraceStep(state=t, inputs=dict(inputs),
                                       signals=signals))
            for monitor in bank:
                violation = monitor.observe(t, values)
                if violation is not None:
                    return violation, steps, dict(self.sim.state)
        return None, steps, dict(self.sim.state)

    def outcome(self, injection: Injection) -> FaultOutcome:
        """Run one fault and classify it."""
        violation, _, final_state = self.run_schedule([injection])
        if violation is not None:
            return FaultOutcome(
                fault=injection.label(),
                status="detected",
                monitor=violation.monitor,
                detection_cycle=violation.cycle,
                detail=violation.detail,
            )
        if final_state != self.golden_final:
            diverged = sorted(
                s for s, v in final_state.items()
                if self.golden_final.get(s) != v
            )
            return FaultOutcome(
                fault=injection.label(),
                status="latent",
                detail=f"state diverged: {', '.join(diverged[:4])}",
            )
        return FaultOutcome(fault=injection.label(), status="undetected")

    def run_chunk(
        self, injections: Sequence[Injection]
    ) -> List[FaultOutcome]:
        """Classify a chunk of injections one at a time (sweep order)."""
        return [self.outcome(injection) for injection in injections]


def enumerate_injections(
    target: RtlTarget, config: CampaignConfig
) -> List[Injection]:
    """The full (site x kind x cycle) sweep, in deterministic order."""
    injections: List[Injection] = []
    for net in target.fault_sites:
        for kind in config.kinds:
            for cycle in config.injection_cycles:
                duration = config.flip_duration if kind == "flip" else None
                injections.append(Injection(net, kind, cycle, duration))
    return injections


def prove_untestable(target: RtlTarget, injection: Injection) -> bool:
    """Exhaustively prove a fault equivalent to the fault-free circuit.

    Enumerates every (DUT state, boundary input) pair -- boundary inputs
    are the channel wires the environment drives, forced via the
    override hook -- and compares the faulty against the fault-free
    next state and DUT-driven channel outputs.  If no pair differs the
    fault is untestable by *any* environment, so (ATPG convention) it
    leaves the coverage denominator.

    Conservative: returns False (i.e. "maybe testable") when the DUT
    state lives in latches or the enumeration would be too large.
    """
    nl = target.netlist
    sites = set(target.fault_sites)
    if any(q in nl.latches for q in sites):
        return False
    state_bits = [q for q in target.fault_sites if q in nl.flops]
    boundary = [
        w for ch in target.channels for w in ch.wires() if w not in sites
    ]
    outputs = [
        w for ch in target.channels for w in ch.wires() if w in sites
    ]
    if len(state_bits) + len(boundary) > 16:
        return False
    sim = TwoPhaseSimulator(nl)
    base_state = sim.initial_state()
    fault_override = injection.override()
    for bits in itertools.product((0, 1), repeat=len(state_bits)):
        state = dict(base_state)
        state.update(zip(state_bits, bits))
        for env_bits in itertools.product((0, 1), repeat=len(boundary)):
            env = dict(zip(boundary, env_bits))
            sim.overrides = env
            good_vals, good_next = sim.step_function(state, {})
            sim.overrides = {**env, injection.net: fault_override}
            bad_vals, bad_next = sim.step_function(state, {})
            if any(good_vals.get(w) != bad_vals.get(w) for w in outputs):
                return False
            if any(good_next.get(q) != bad_next.get(q) for q in state_bits):
                return False
    return True


def resolve_target(target: Union[str, RtlTarget]) -> RtlTarget:
    if isinstance(target, RtlTarget):
        return target
    try:
        return TARGETS[target]()
    except KeyError:
        raise ValueError(
            f"unknown target {target!r}; pick one of {sorted(TARGETS)}"
        ) from None


def _chunked(
    items: Sequence[Injection], size: int
) -> List[List[Injection]]:
    """Sweep-order chunks of at most ``size`` injections."""
    return [list(items[i:i + size]) for i in range(0, len(items), size)]


def _make_harness(
    tgt: RtlTarget,
    config: CampaignConfig,
    lanes: int,
    degrade: bool,
    metrics: Optional["MetricsRegistry"],
    backend: str = "batch",
    cache: Optional[str] = None,
):
    """The chunk-classifying harness for one (target, lanes, backend).

    ``backend="compiled"`` swaps the lane-parallel engine for the
    codegen backend (:class:`repro.codegen.harness.CompiledCampaignHarness`,
    used even at ``lanes=1``); ``cache`` is its build-cache directory
    (``None`` for the default).  The scalar engine stays the semantic
    reference for the degradation ladder either way.
    """
    if backend not in ("batch", "compiled"):
        raise ValueError(
            f"unknown backend {backend!r}; pick 'batch' or 'compiled'"
        )
    if lanes > 1 or backend == "compiled":
        if backend == "compiled":
            from repro.codegen.harness import CompiledCampaignHarness

            def factory():
                return CompiledCampaignHarness(
                    tgt, config, lanes, metrics=metrics, cache=cache
                )
        else:
            from repro.faults.batch import BatchCampaignHarness

            def factory():
                return BatchCampaignHarness(
                    tgt, config, lanes, metrics=metrics
                )

        if degrade:
            from repro.resilience.degrade import DegradingCampaignHarness

            return DegradingCampaignHarness(
                tgt, config, lanes, metrics=metrics, batch_factory=factory
            )
        return factory()
    return CampaignHarness(tgt, config)


def _chunk_worker(
    spec: Union[str, RtlTarget],
    config: CampaignConfig,
    lanes: int,
    degrade: bool,
    backend: str = "batch",
    cache: Optional[str] = None,
) -> Callable[[List[Injection]], List[FaultOutcome]]:
    """Worker-process initialiser for the shard supervisor.

    Top-level so :mod:`multiprocessing` can pickle it; each worker
    builds its harness (and golden run) once and serves chunks with it.
    ``cache`` travels as a plain directory string for the same reason;
    workers sharing a warm cache directory all hit the same artifact.
    """
    tgt = resolve_target(spec)
    harness = _make_harness(tgt, config, lanes, degrade, None, backend, cache)
    return harness.run_chunk


def _campaign_fingerprint(
    tgt: RtlTarget, config: CampaignConfig, lanes: int, total: int
) -> Dict[str, object]:
    """What a checkpoint directory is committed to: the sweep geometry."""
    return {
        "kind": "campaign",
        "target": tgt.name,
        "seed": config.seed,
        "cycles": config.cycles,
        "kinds": list(config.kinds),
        "injection_cycles": list(config.injection_cycles),
        "flip_duration": config.flip_duration,
        "untestable_analysis": config.untestable_analysis,
        "lanes": lanes,
        "total": total,
    }


def _apply_untestable_analysis(
    tgt: RtlTarget,
    cfg: CampaignConfig,
    injections: Sequence[Injection],
    outcomes: Sequence[FaultOutcome],
) -> List[FaultOutcome]:
    """Upgrade undetected faults the prover shows to be untestable.

    A shared post-pass over (injection, outcome) pairs so sequential,
    lane-sharded and process-sharded campaigns run the identical
    analysis on the identical inputs.
    """
    if not cfg.untestable_analysis:
        return list(outcomes)
    final: List[FaultOutcome] = []
    for injection, outcome in zip(injections, outcomes):
        if outcome.status == "undetected" and prove_untestable(tgt, injection):
            outcome = FaultOutcome(
                fault=outcome.fault,
                status="untestable",
                detail=(
                    "proven equivalent to the fault-free circuit on every "
                    "(state, boundary input) pair"
                ),
            )
        final.append(outcome)
    return final


def run_campaign(
    target: Union[str, RtlTarget],
    config: Optional[CampaignConfig] = None,
    lanes: int = 1,
    jobs: int = 1,
    progress: Optional[Callable[[int, int], None]] = None,
    metrics: Optional["MetricsRegistry"] = None,
    checkpoint: Optional[str] = None,
    shard_timeout: Optional[float] = None,
    max_retries: int = 2,
    degrade: bool = True,
    degradation: bool = False,
    profile: bool = False,
    backend: str = "batch",
    cache: Optional[str] = None,
    workers: Optional[Sequence[str]] = None,
    fabric: Optional[object] = None,
) -> CampaignReport:
    """Sweep every enumerated fault over ``target``.

    ``lanes > 1`` batches that many injections per simulation on the
    bit-parallel kernel; ``jobs > 1`` additionally spreads the chunks
    over supervised worker processes -- a worker that dies or blows the
    per-chunk ``shard_timeout`` has its chunk requeued (up to
    ``max_retries`` times, with capped exponential backoff) instead of
    sinking the campaign.  Every combination yields a byte-identical
    report for the same seed.

    ``checkpoint`` names a directory that receives one atomic JSON file
    per classified chunk; rerunning with the same directory (after a
    crash, a SIGKILL, Ctrl-C) validates the sweep fingerprint, skips
    the completed chunks and produces the byte-identical report of an
    uninterrupted run.

    ``degrade`` (default on, only meaningful with ``lanes > 1``) wraps
    the batch kernel in the graceful-degradation harness: a corrupt or
    faulted lane is quarantined and replayed on the scalar simulator
    rather than poisoning its whole chunk.

    ``progress`` is an optional ``fn(done_injections, total)`` hook
    (called per classified chunk).  ``metrics`` is an optional
    :class:`~repro.obs.metrics.MetricsRegistry`: verdicts are tallied
    into ``campaign_faults_total{status,target}`` counters, shard
    requeues into ``campaign_shard_retries_total{reason}``, quarantined
    lanes into ``campaign_lane_quarantine_total{reason,target}``.
    Neither affects the outcomes or the serialised report.

    ``degradation`` (opt in) attaches a lane-quarantine summary to
    ``report.degradation`` -- total lanes replayed on the scalar engine
    and the per-reason breakdown -- serialised as a ``degradation`` key
    next to ``metrics``.  Off by default so the report stays
    byte-identical to the goldens.  Per-lane attribution lives in the
    coordinating process, so with ``jobs > 1`` the summary covers shard
    retries only.

    ``profile`` (opt in) attaches the fault-free performance baseline
    of the target -- the :mod:`repro.obs.analyze` cycle-accounting /
    attribution report, run on the scalar engine for the campaign's
    ``cycles`` and ``seed`` -- as a ``profile`` key.  Off by default
    so the report stays byte-identical to the goldens.  Requires the
    target to be one of the named stock targets.

    ``backend`` selects the lane-parallel engine: ``"batch"`` (the
    default) runs :class:`~repro.faults.batch.BatchCampaignHarness`,
    ``"compiled"`` the codegen backend with its on-disk build cache
    (``cache`` names the cache directory, shipped to workers as a plain
    string; ``None`` uses the default directory).  Reports are
    byte-identical across backends, and the checkpoint fingerprint
    deliberately excludes the backend so a campaign interrupted on one
    can resume on the other.

    ``workers`` names socket-fabric workers (``["host:port", ...]``,
    each one a running ``repro worker --listen``) and replaces the
    in-process sharding: chunks are leased over the
    :class:`~repro.fabric.FabricCoordinator` with work stealing,
    health-tracked reconnects and requeues.  Requires a *named*
    target (the worker rebuilds it from the name and the handshake
    rejects any worker whose netlist fingerprints differently).
    ``fabric`` optionally carries a :class:`~repro.fabric.FabricConfig`
    with the scheduling knobs.  The merged report stays byte-identical
    to ``jobs=1`` for any worker pool and any crash/steal schedule, and
    ``checkpoint`` composes: the coordinator (never a worker) persists
    each chunk, so a killed coordinator resumes against surviving
    workers.
    """
    cfg = config or CampaignConfig()
    if lanes < 1:
        raise ValueError("lanes must be >= 1")
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if degradation and metrics is None:
        # The quarantine tallies ride on the metrics registry; conjure a
        # private one when the caller did not supply any.
        from repro.obs.metrics import MetricsRegistry

        metrics = MetricsRegistry()
    tgt = resolve_target(target)
    injections = enumerate_injections(tgt, cfg)
    chunks = _chunked(injections, lanes)
    # Ship the target by name when we can: cheaper to pickle, and the
    # worker rebuilds it deterministically.
    spec: Union[str, RtlTarget] = target if isinstance(target, str) else tgt
    total = len(injections)

    store: Optional[CheckpointStore] = None
    by_index: Dict[int, List[FaultOutcome]] = {}
    if checkpoint is not None:
        store = CheckpointStore(checkpoint)
        store.ensure_manifest(_campaign_fingerprint(tgt, cfg, lanes, total))
        for index, payload in store.chunks().items():
            if 0 <= index < len(chunks) and isinstance(payload, list):
                by_index[index] = [FaultOutcome(**d) for d in payload]
    done = sum(len(outs) for outs in by_index.values())

    def record(index: int, outs: List[FaultOutcome]) -> None:
        nonlocal done
        by_index[index] = outs
        done += len(outs)
        if store is not None:
            store.save_chunk(index, [o.to_dict() for o in outs])
        if progress is not None:
            progress(done, total)

    pending = [
        (index, chunk)
        for index, chunk in enumerate(chunks)
        if index not in by_index
    ]
    if progress is not None and done:
        progress(done, total)  # announce the resumed head start

    if workers:
        if not isinstance(target, str):
            raise ValueError(
                "the socket fabric needs a named target so workers can "
                "rebuild (and fingerprint) it independently"
            )
        from repro.fabric import (
            FabricConfig,
            FabricCoordinator,
            parse_workers,
        )
        from repro.fabric.jobs import (
            encode_campaign_config,
            encode_injection,
        )

        fabric_config = fabric or FabricConfig(
            unit_timeout=shard_timeout, max_retries=max_retries,
        )
        coordinator = FabricCoordinator(
            "campaign",
            {
                "target": target,
                "config": encode_campaign_config(cfg),
                "lanes": lanes,
                "degrade": degrade,
                "backend": backend,
                "cache": cache,
            },
            [
                (index, [encode_injection(i) for i in chunk])
                for index, chunk in pending
            ],
            parse_workers(",".join(workers)),
            config=fabric_config,
            metrics=metrics,
            on_result=lambda index, payload: record(
                index, [FaultOutcome(**d) for d in payload]
            ),
            injections_per_unit=lanes,
        )
        coordinator.run()
    elif jobs > 1 and len(pending) > 1:
        supervisor = ShardSupervisor(
            _chunk_worker,
            (spec, cfg, lanes, degrade, backend, cache),
            pending,
            config=SupervisorConfig(
                jobs=jobs, shard_timeout=shard_timeout,
                max_retries=max_retries,
            ),
            metrics=metrics,
            on_result=record,
        )
        supervisor.run()
    elif pending:
        harness = _make_harness(
            tgt, cfg, lanes, degrade, metrics, backend, cache
        )
        for index, chunk in pending:
            record(index, harness.run_chunk(chunk))

    outcomes = [o for index in sorted(by_index) for o in by_index[index]]
    report = CampaignReport(target=tgt.name, seed=cfg.seed, cycles=cfg.cycles)
    report.outcomes = _apply_untestable_analysis(tgt, cfg, injections, outcomes)
    if metrics is not None:
        for outcome in report.outcomes:
            metrics.counter(
                "campaign_faults_total", status=outcome.status, target=tgt.name
            ).inc()
    if degradation:
        report.degradation = _degradation_summary(
            metrics, tgt.name, lanes=lanes, degrade=degrade
        )
    if profile:
        from repro.obs.analyze import run_profile

        # The fault-free baseline always runs on the scalar engine so
        # the key is byte-identical whatever lane/backend combination
        # executed the sweep itself.
        report.profile = run_profile(
            tgt.name, cycles=cfg.cycles, seed=cfg.seed, backend="scalar"
        ).to_dict()
    return report


def _degradation_summary(
    metrics: "MetricsRegistry",
    target: str,
    lanes: int,
    degrade: bool,
) -> Dict[str, object]:
    """The ``degradation`` report key: lane-quarantine totals by reason.

    Reads the ``campaign_lane_quarantine_total{reason,target}`` series
    the harness tallied (filtered to ``target``) plus any shard retries;
    deterministic because the counters are summed, never timestamped.
    """
    by_reason: Dict[str, int] = {}
    for metric in metrics.series("campaign_lane_quarantine_total"):
        labels = dict(metric.labels)
        if labels.get("target") != target:
            continue
        reason = labels.get("reason", "unknown")
        by_reason[reason] = by_reason.get(reason, 0) + metric.value
    shard_retries = sum(
        m.value for m in metrics.series("campaign_shard_retries_total")
    )
    summary: Dict[str, object] = {
        "enabled": bool(degrade and lanes > 1),
        "lanes": lanes,
        "quarantined": sum(by_reason.values()),
        "by_reason": by_reason,
    }
    if shard_retries:
        summary["shard_retries"] = shard_retries
    return summary


# ----------------------------------------------------------------------
# Behavioural campaign: the elastic processor
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ProcessorCampaignConfig:
    """Sweep parameters for the behavioural processor campaign."""

    cycles: int = 300
    seed: int = 2007
    kinds: Tuple[str, ...] = (
        "token_drop", "spurious_anti", "glitch_sp", "glitch_sn",
    )
    channels: Tuple[str, ...] = ("if_id", "disp", "alu_q", "wb_q")
    buffers: Tuple[str, ...] = ("EB_IF", "EB_ALU", "EB_WB")
    buffer_kinds: Tuple[str, ...] = BUFFER_FAULT_KINDS
    injection_cycles: Tuple[int, ...] = (60,)
    duration: int = 1


def _golden_commits(config: ProcessorCampaignConfig) -> List[int]:
    net, _, commit = build_processor(ProcessorConfig(seed=config.seed))
    net.run(config.cycles)
    return [instr.seq for instr in commit.committed]


def _processor_outcome(
    config: ProcessorCampaignConfig,
    fault: Union[ChannelFault, BufferFault],
    golden: List[int],
) -> FaultOutcome:
    net, _, commit = build_processor(ProcessorConfig(seed=config.seed))
    if isinstance(fault, ChannelFault):
        saboteur: Union[WireSaboteur, StateSaboteur] = WireSaboteur([fault])
    else:
        buffers = {
            c.name: c for c in net.controllers if isinstance(c, ElasticBuffer)
        }
        saboteur = StateSaboteur([fault], buffers)
    net.add_saboteur(saboteur)
    try:
        net.run(config.cycles)
    except ProtocolViolation as exc:
        return FaultOutcome(
            fault=fault.label(),
            status="detected",
            monitor="protocol",
            detection_cycle=net.cycle,
            detail=str(exc),
        )
    except AssertionError as exc:
        return FaultOutcome(
            fault=fault.label(),
            status="detected",
            monitor="commit-assert",
            detection_cycle=net.cycle,
            detail=str(exc),
        )
    committed = [instr.seq for instr in commit.committed]
    if committed != golden:
        divergence = next(
            (i for i, (a, b) in enumerate(zip(committed, golden)) if a != b),
            min(len(committed), len(golden)),
        )
        return FaultOutcome(
            fault=fault.label(),
            status="detected",
            monitor="golden-data",
            detail=(
                f"committed sequence diverges at index {divergence} "
                f"({len(committed)} vs {len(golden)} commits)"
            ),
        )
    if saboteur.applied:
        return FaultOutcome(
            fault=fault.label(),
            status="latent",
            detail="fault applied but the committed stream is unchanged",
        )
    return FaultOutcome(
        fault=fault.label(),
        status="undetected",
        detail="fault window never armed (nothing to corrupt)",
    )


def enumerate_processor_faults(
    config: ProcessorCampaignConfig,
) -> List[Union[ChannelFault, BufferFault]]:
    faults: List[Union[ChannelFault, BufferFault]] = []
    for channel in config.channels:
        for kind in config.kinds:
            if kind not in CHANNEL_FAULT_KINDS:
                raise ValueError(f"unknown channel fault kind {kind!r}")
            for cycle in config.injection_cycles:
                faults.append(ChannelFault(channel, kind, cycle, config.duration))
    for buffer in config.buffers:
        for kind in config.buffer_kinds:
            for cycle in config.injection_cycles:
                faults.append(BufferFault(buffer, kind, cycle))
    return faults


def run_processor_campaign(
    config: Optional[ProcessorCampaignConfig] = None,
    progress: Optional[Callable[[int, int], None]] = None,
    metrics: Optional["MetricsRegistry"] = None,
) -> CampaignReport:
    """Sweep behavioural faults over the Sect. 7 elastic processor."""
    cfg = config or ProcessorCampaignConfig()
    golden = _golden_commits(cfg)
    report = CampaignReport(target="processor", seed=cfg.seed, cycles=cfg.cycles)
    faults = enumerate_processor_faults(cfg)
    for fault in faults:
        report.outcomes.append(_processor_outcome(cfg, fault, golden))
        if progress is not None:
            progress(len(report.outcomes), len(faults))
    if metrics is not None:
        for outcome in report.outcomes:
            metrics.counter(
                "campaign_faults_total", status=outcome.status,
                target="processor",
            ).inc()
    return report
