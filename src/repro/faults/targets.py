"""Named fault-campaign targets.

Each target wraps one controller of Figs. 5--7 in a protocol-obeying
non-deterministic environment (the same ``nd_source``/``nd_sink``
stubs the model-checking testbenches use), and records

* which primary inputs are the environment's free choices (driven by
  the campaign's seeded stimulus),
* which nets belong to the device under test (the fault sites -- the
  nets *driven by* the controller builder, collected by snapshotting
  the netlist around the build call),
* which dual channels the online monitors watch, and
* where the EB state bits live (for the conservation/encoding
  monitors).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

from repro.elastic.gates import (
    GateChannel,
    build_elastic_buffer,
    build_fork,
    build_join,
    build_nd_sink,
    build_nd_source,
    build_passive,
    build_variable_latency,
)
from repro.faults.monitors import EbProbe
from repro.rtl.netlist import Netlist


def build_duplex_source(
    nl: Netlist,
    output: GateChannel,
    prefix: str,
    choice_input: str,
    accept_input: str,
) -> None:
    """A non-deterministic producer that also accepts anti-tokens.

    Like :func:`~repro.elastic.gates.build_nd_source` but with a second
    free choice: when not offering a token it may lower ``S−``
    (``accept_input``), letting the DUT emit an anti-token leftwards.
    Without this the ``out_neg`` path of a dual EB is environment-dead
    and its faults are unexercisable.  ``S− = ¬V+ ∧ ¬accept`` keeps the
    equation (2) invariant ``¬(V+ ∧ S−)`` by construction.
    """
    pend = nl.add_flop(f"{prefix}.pend_d", q=f"{prefix}.pend", init=0)
    vp = nl.OR(pend, choice_input, out=output.vp)
    nl.AND(nl.NOT(vp), nl.NOT(accept_input), out=output.sn)
    retry = nl.AND(vp, output.sp, nl.NOT(output.vn), out=f"{prefix}.retry")
    nl.BUF(retry, out=f"{prefix}.pend_d")


@dataclass
class RtlTarget:
    """A netlist plus everything a fault campaign needs to drive it."""

    name: str
    netlist: Netlist
    channels: List[GateChannel]
    free_inputs: List[str]
    fault_sites: List[str]
    ebs: List[EbProbe] = field(default_factory=list)

    @property
    def observe(self) -> List[str]:
        """Wires compared against the golden run (the channel interface)."""
        wires: List[str] = []
        for ch in self.channels:
            wires.extend(ch.wires())
        for probe in self.ebs:
            wires.extend(probe.state_bits)
        return wires


def _dut_nets(nl: Netlist, before: set) -> List[str]:
    """Nets driven by the cells added since the ``before`` snapshot."""
    added = (set(nl.gates) | set(nl.latches) | set(nl.flops)) - before
    return sorted(added)


def _snapshot(nl: Netlist) -> set:
    return set(nl.gates) | set(nl.latches) | set(nl.flops)


def dual_ehb(
    initial_tokens: int = 0, as_latches: bool = False
) -> RtlTarget:
    """source -> dual EB (Fig. 5) -> killing sink."""
    nl = Netlist("dual_ehb")
    left = GateChannel.declare(nl, "L")
    right = GateChannel.declare(nl, "R")
    choice = nl.add_input("src.choice")
    accept = nl.add_input("src.accept")
    build_duplex_source(nl, left, prefix="src",
                        choice_input=choice, accept_input=accept)
    before = _snapshot(nl)
    build_elastic_buffer(
        nl, left, right, prefix="eb",
        initial_tokens=initial_tokens, as_latches=as_latches,
    )
    sites = _dut_nets(nl, before)
    stall = nl.add_input("snk.stall")
    kill = nl.add_input("snk.kill")
    build_nd_sink(nl, right, prefix="snk", stall_input=stall, kill_input=kill)
    for ch in (left, right):
        for w in ch.wires():
            nl.add_output(w)
    return RtlTarget(
        name="dual_ehb",
        netlist=nl,
        channels=[left, right],
        free_inputs=[choice, accept, stall, kill],
        fault_sites=sites,
        ebs=[EbProbe("eb", left, right)],
    )


def dual_ehb_latches() -> RtlTarget:
    """The Fig. 5 EB with master/slave latch state (the area-true form)."""
    target = dual_ehb(as_latches=True)
    target.name = "dual_ehb_latches"
    target.netlist.name = "dual_ehb_latches"
    return target


def join(n: int = 2, early: bool = False) -> RtlTarget:
    """n sources -> dual (or early 1-of-n) join (Fig. 6(a)/(c)) -> sink."""
    nl = Netlist("early_join" if early else "join")
    ins = [GateChannel.declare(nl, f"I{k}") for k in range(n)]
    out = GateChannel.declare(nl, "Z")
    for k, ch in enumerate(ins):
        choice = nl.add_input(f"src{k}.choice")
        build_nd_source(nl, ch, prefix=f"src{k}", choice_input=choice)
    before = _snapshot(nl)
    ee = (lambda netl, vps, datas: netl.OR(*vps)) if early else None
    build_join(nl, ins, out, prefix="j", ee=ee,
               datas=[()] * n if early else None)
    sites = _dut_nets(nl, before)
    stall = nl.add_input("snk.stall")
    kill = nl.add_input("snk.kill")
    build_nd_sink(nl, out, prefix="snk", stall_input=stall, kill_input=kill)
    channels = [*ins, out]
    for ch in channels:
        for w in ch.wires():
            nl.add_output(w)
    return RtlTarget(
        name=nl.name,
        netlist=nl,
        channels=channels,
        free_inputs=[f"src{k}.choice" for k in range(n)] + [stall, kill],
        fault_sites=sites,
    )


def fork(n: int = 2) -> RtlTarget:
    """source -> dual eager fork (Fig. 6(b)) -> n killing sinks."""
    nl = Netlist("fork")
    inp = GateChannel.declare(nl, "I")
    outs = [GateChannel.declare(nl, f"O{k}") for k in range(n)]
    choice = nl.add_input("src.choice")
    build_nd_source(nl, inp, prefix="src", choice_input=choice)
    before = _snapshot(nl)
    build_fork(nl, inp, outs, prefix="f")
    sites = _dut_nets(nl, before)
    free = [choice]
    for k, ch in enumerate(outs):
        stall = nl.add_input(f"snk{k}.stall")
        kill = nl.add_input(f"snk{k}.kill")
        build_nd_sink(nl, ch, prefix=f"snk{k}", stall_input=stall,
                      kill_input=kill)
        free.extend([stall, kill])
    channels = [inp, *outs]
    for ch in channels:
        for w in ch.wires():
            nl.add_output(w)
    return RtlTarget(
        name="fork", netlist=nl, channels=channels,
        free_inputs=free, fault_sites=sites,
    )


def passive() -> RtlTarget:
    """source -> passive anti-token interface (Fig. 7(a)) -> sink."""
    nl = Netlist("passive")
    up = GateChannel.declare(nl, "U")
    down = GateChannel.declare(nl, "D")
    choice = nl.add_input("src.choice")
    build_nd_source(nl, up, prefix="src", choice_input=choice)
    before = _snapshot(nl)
    build_passive(nl, up, down, prefix="p")
    sites = _dut_nets(nl, before)
    stall = nl.add_input("snk.stall")
    kill = nl.add_input("snk.kill")
    build_nd_sink(nl, down, prefix="snk", stall_input=stall, kill_input=kill)
    for ch in (up, down):
        for w in ch.wires():
            nl.add_output(w)
    return RtlTarget(
        name="passive", netlist=nl, channels=[up, down],
        free_inputs=[choice, stall, kill], fault_sites=sites,
    )


def variable_latency() -> RtlTarget:
    """source -> VL controller (Fig. 7(b)) -> sink; ``done`` is free."""
    nl = Netlist("vl")
    left = GateChannel.declare(nl, "L")
    right = GateChannel.declare(nl, "R")
    choice = nl.add_input("src.choice")
    build_nd_source(nl, left, prefix="src", choice_input=choice)
    done = nl.add_input("vl.done")
    before = _snapshot(nl)
    build_variable_latency(nl, left, right, prefix="vl", done_input=done)
    sites = _dut_nets(nl, before)
    stall = nl.add_input("snk.stall")
    kill = nl.add_input("snk.kill")
    build_nd_sink(nl, right, prefix="snk", stall_input=stall, kill_input=kill)
    for ch in (left, right):
        for w in ch.wires():
            nl.add_output(w)
    return RtlTarget(
        name="vl", netlist=nl, channels=[left, right],
        free_inputs=[choice, done, stall, kill], fault_sites=sites,
    )


#: name -> builder, the ``repro inject --netlist`` registry
TARGETS: Dict[str, Callable[[], RtlTarget]] = {
    "dual_ehb": dual_ehb,
    "dual_ehb_latches": dual_ehb_latches,
    "join": join,
    "early_join": lambda: join(early=True),
    "fork": fork,
    "passive": passive,
    "vl": variable_latency,
}
