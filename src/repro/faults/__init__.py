"""repro.faults -- fault injection, online SELF monitors, trace shrinking.

The subsystem has four layers:

* :mod:`repro.faults.models` -- fault models: RTL stuck-at/flip
  injections replayed through the simulator's net-override hook, and
  behavioural channel glitches / buffer state upsets applied by
  saboteurs;
* :mod:`repro.faults.monitors` -- non-raising online checkers for the
  SELF invariants, persistence, EB state encoding, token conservation
  and golden-reference lock-step comparison;
* :mod:`repro.faults.campaign` -- seeded (site x kind x cycle) sweeps
  over the Figs. 5--7 controller targets and the Sect. 7 processor,
  with deterministic JSON reports, optionally lane-parallel
  (``lanes``) and process-sharded (``jobs``);
* :mod:`repro.faults.batch` -- the bit-parallel campaign backend:
  word-wide monitor bank and 64-injections-per-pass harness over
  :class:`repro.rtl.BatchSimulator`, plus one-fault/many-seeds sweeps;
* :mod:`repro.faults.shrink` -- ddmin minimisation of failing
  schedules, rendered as counterexample traces.
"""

from repro.faults.batch import (
    BatchCampaignHarness,
    batch_monitor_bank,
    lane_overrides,
    run_seed_sweep,
)
from repro.faults.campaign import (
    CampaignConfig,
    CampaignHarness,
    CampaignReport,
    FaultOutcome,
    ProcessorCampaignConfig,
    enumerate_injections,
    enumerate_processor_faults,
    make_stimulus,
    resolve_target,
    run_campaign,
    run_processor_campaign,
)
from repro.faults.models import (
    BUFFER_FAULT_KINDS,
    CHANNEL_FAULT_KINDS,
    RTL_FAULT_KINDS,
    BufferFault,
    ChannelFault,
    Injection,
    RtlFaultInjector,
    StateSaboteur,
    WireSaboteur,
    transient_flip,
)
from repro.faults.monitors import (
    ConservationMonitor,
    EbProbe,
    EncodingMonitor,
    GoldenMonitor,
    InvariantMonitor,
    Monitor,
    PersistenceMonitor,
    Violation,
    buffer_monitors,
    channel_monitors,
)
from repro.faults.shrink import failing_predicate, render_failure, shrink_schedule
from repro.faults.targets import TARGETS, RtlTarget

__all__ = [
    "BUFFER_FAULT_KINDS",
    "CHANNEL_FAULT_KINDS",
    "RTL_FAULT_KINDS",
    "BatchCampaignHarness",
    "BufferFault",
    "CampaignConfig",
    "CampaignHarness",
    "CampaignReport",
    "ChannelFault",
    "ConservationMonitor",
    "EbProbe",
    "EncodingMonitor",
    "FaultOutcome",
    "GoldenMonitor",
    "Injection",
    "InvariantMonitor",
    "Monitor",
    "PersistenceMonitor",
    "ProcessorCampaignConfig",
    "RtlFaultInjector",
    "RtlTarget",
    "StateSaboteur",
    "TARGETS",
    "Violation",
    "WireSaboteur",
    "batch_monitor_bank",
    "buffer_monitors",
    "channel_monitors",
    "enumerate_injections",
    "enumerate_processor_faults",
    "failing_predicate",
    "lane_overrides",
    "make_stimulus",
    "render_failure",
    "resolve_target",
    "run_campaign",
    "run_processor_campaign",
    "run_seed_sweep",
    "shrink_schedule",
    "transient_flip",
]
