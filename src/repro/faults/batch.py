"""Lane-parallel fault campaigns on the batch simulation kernel.

:class:`BatchCampaignHarness` is the 64-lane counterpart of
:class:`~repro.faults.campaign.CampaignHarness`: one
:class:`~repro.rtl.batchsim.BatchSimulator` runs up to ``lanes``
injections of the same sweep simultaneously, each in its own bit lane,
under the broadcast campaign stimulus.  :func:`run_seed_sweep` is the
transposed mode -- one fault replayed under many stimulus seeds, one
seed per lane.

The monitors here are word-wide re-implementations of the scalar bank
in :mod:`repro.faults.monitors`: every rule is evaluated for all lanes
with a few integer operations on the simulator's plane arrays (signal
slots are resolved once, at bank construction), and per-lane values are
only unpacked on a violation, to build the identical detail string.
Bank order, the if/elif precedence inside each monitor and the
first-detection-wins rule all mirror the scalar harness exactly, which
is what makes a lane-sharded campaign report byte-identical to the
sequential one (locked by ``tests/faults/test_campaign_determinism.py``).

Signed occupancy arithmetic for the conservation monitor runs on
bit-plane ripple-carry adders: a lane-parallel 4-bit two's-complement
number is four machine words, bit ``i`` of plane ``j`` holding bit
``j`` of lane ``i``'s value.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.metrics import MetricsRegistry

from repro.faults.campaign import (
    CampaignConfig,
    FaultOutcome,
    make_stimulus,
    resolve_target,
)
from repro.faults.models import Injection
from repro.faults.monitors import EbProbe, Violation
from repro.faults.targets import RtlTarget
from repro.resilience.checkpoint import CheckpointStore
from repro.rtl.batchsim import (
    BatchSimulator,
    LaneOverride,
    broadcast,
    pack_stimulus,
    unpack_lane,
)
from repro.rtl.logic import Value

__all__ = [
    "BatchCampaignHarness",
    "batch_monitor_bank",
    "lane_overrides",
    "run_seed_sweep",
]


def _lanes_of(mask: int) -> Iterator[int]:
    """The set bit positions of ``mask``, lowest first."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


# ----------------------------------------------------------------------
# Lane-parallel signed arithmetic (bit planes, two's complement)
# ----------------------------------------------------------------------
def _sext(planes: Sequence[int], width: int) -> List[int]:
    sign = planes[-1]
    return list(planes) + [sign] * (width - len(planes))


def _add(a: Sequence[int], b: Sequence[int], width: int, mask: int) -> List[int]:
    a = _sext(a, width)
    b = _sext(b, width)
    out: List[int] = []
    carry = 0
    for ai, bi in zip(a, b):
        out.append((ai ^ bi ^ carry) & mask)
        carry = ((ai & bi) | (carry & (ai | bi))) & mask
    return out


def _neg(planes: Sequence[int], width: int, mask: int) -> List[int]:
    inverted = [(~p) & mask for p in _sext(planes, width)]
    one = [mask] + [0] * (width - 1)
    return _add(inverted, one, width, mask)


def _sub(a: Sequence[int], b: Sequence[int], width: int, mask: int) -> List[int]:
    return _add(_sext(a, width), _neg(b, width, mask), width, mask)


def _count2(x: int, y: int) -> List[int]:
    """Lane-parallel unsigned count of two bits (0..2) as 3 planes."""
    return [x ^ y, x & y, 0]


def _count3(x: int, y: int, z: int) -> List[int]:
    """Lane-parallel unsigned count of three bits (0..3) as 3 planes."""
    return [x ^ y ^ z, (x & y) | (x & z) | (y & z), 0]


def _plane_int(planes: Sequence[int], lane: int) -> int:
    """One lane's signed value out of two's-complement bit planes."""
    bit = 1 << lane
    value = 0
    for i, plane in enumerate(planes):
        if plane & bit:
            value |= 1 << i
    if planes[-1] & bit:
        value -= 1 << len(planes)
    return value


# ----------------------------------------------------------------------
# Word-wide monitors
# ----------------------------------------------------------------------
class BatchMonitor:
    """Base: observe one settled cycle for all (still alive) lanes.

    ``observe`` reads the simulator's live value planes (``v[slot]`` is
    the strict-bit word of a wire: lane set iff known 1, the batch twin
    of :func:`repro.faults.monitors._bit`) and returns
    ``(lane, Violation)`` pairs; the harness kills each reported lane
    before calling the next monitor, preserving the scalar bank's
    first-detection-wins order.
    """

    name = "monitor"

    def observe(
        self, cycle: int, v: List[int], k: List[int], alive: int
    ) -> List[Tuple[int, Violation]]:
        raise NotImplementedError


class BatchInvariantMonitor(BatchMonitor):
    """Word-wide equation (2) check on one channel."""

    def __init__(self, channel, sim: BatchSimulator) -> None:
        self.name = f"invariant[{channel.name}]"
        self._vp = sim.slot(channel.vp)
        self._sp = sim.slot(channel.sp)
        self._vn = sim.slot(channel.vn)
        self._sn = sim.slot(channel.sn)

    def observe(self, cycle, v, k, alive):
        neg = v[self._vn] & v[self._sp] & alive
        pos = v[self._vp] & v[self._sn] & alive & ~neg
        if not (neg | pos):
            return []
        out = [
            (lane, Violation(cycle, self.name, "V- and S+ both asserted"))
            for lane in _lanes_of(neg)
        ]
        out.extend(
            (lane, Violation(cycle, self.name, "V+ and S- both asserted"))
            for lane in _lanes_of(pos)
        )
        return out


class BatchPersistenceMonitor(BatchMonitor):
    """Word-wide Retry persistence on one channel."""

    def __init__(self, channel, sim: BatchSimulator) -> None:
        self.name = f"persistence[{channel.name}]"
        self._vp = sim.slot(channel.vp)
        self._sp = sim.slot(channel.sp)
        self._vn = sim.slot(channel.vn)
        self._sn = sim.slot(channel.sn)
        self._pending_pos = 0
        self._pending_neg = 0

    def observe(self, cycle, v, k, alive):
        vp = v[self._vp]
        vn = v[self._vn]
        dropped_pos = self._pending_pos & ~vp & alive
        dropped_neg = self._pending_neg & ~vn & alive & ~dropped_pos
        # A kill resolves both flows; only a genuine retry carries over.
        self._pending_pos = vp & v[self._sp] & ~vn
        self._pending_neg = vn & v[self._sn] & ~vp
        if not (dropped_pos | dropped_neg):
            return []
        out = [
            (lane, Violation(cycle, self.name, "V+ dropped during Retry+"))
            for lane in _lanes_of(dropped_pos)
        ]
        out.extend(
            (lane, Violation(cycle, self.name, "V- dropped during Retry-"))
            for lane in _lanes_of(dropped_neg)
        )
        return out


class BatchEncodingMonitor(BatchMonitor):
    """Word-wide thermometer-code invariants of the EB state bits."""

    def __init__(self, probe: EbProbe, sim: BatchSimulator) -> None:
        self.name = f"encoding[{probe.prefix}]"
        self._bits = tuple(sim.slot(s) for s in probe.state_bits)

    def observe(self, cycle, v, k, alive):
        t0, t1, a0, a1 = (v[s] for s in self._bits)
        bad_t = t1 & ~t0 & alive
        bad_a = a1 & ~a0 & alive & ~bad_t
        coexist = t0 & a0 & alive & ~bad_t & ~bad_a
        if not (bad_t | bad_a | coexist):
            return []
        out = [
            (lane, Violation(cycle, self.name, "t1 set without t0"))
            for lane in _lanes_of(bad_t)
        ]
        out.extend(
            (lane, Violation(cycle, self.name, "a1 set without a0"))
            for lane in _lanes_of(bad_a)
        )
        out.extend(
            (lane, Violation(cycle, self.name,
                             "tokens and anti-tokens coexist"))
            for lane in _lanes_of(coexist)
        )
        return out


class BatchConservationMonitor(BatchMonitor):
    """Word-wide token conservation via bit-plane occupancy arithmetic."""

    #: two's-complement width: occupancy+delta spans [-5, 5]
    _WIDTH = 4

    def __init__(self, probe: EbProbe, sim: BatchSimulator) -> None:
        self.name = f"conservation[{probe.prefix}]"
        self.mask = sim.mask
        self._bits = tuple(sim.slot(s) for s in probe.state_bits)
        left, right = probe.left, probe.right
        self._lvp, self._lsp = sim.slot(left.vp), sim.slot(left.sp)
        self._lvn, self._lsn = sim.slot(left.vn), sim.slot(left.sn)
        self._rvp, self._rsp = sim.slot(right.vp), sim.slot(right.sp)
        self._rvn, self._rsn = sim.slot(right.vn), sim.slot(right.sn)
        self._prev: Optional[Tuple[List[int], List[int]]] = None

    def _occupancy(self, v: List[int]) -> List[int]:
        t0, t1, a0, a1 = (v[s] for s in self._bits)
        return _sub(_count2(t0, t1), _count2(a0, a1), self._WIDTH, self.mask)

    def _delta(self, v: List[int]) -> List[int]:
        mask = self.mask
        lvp, lsp, lvn, lsn = v[self._lvp], v[self._lsp], v[self._lvn], v[self._lsn]
        rvp, rsp, rvn, rsn = v[self._rvp], v[self._rsp], v[self._rvn], v[self._rsn]
        in_pos = lvp & (mask ^ lsp) & (mask ^ lvn)
        kill_left = lvp & lvn
        out_neg = lvn & (mask ^ lsn) & (mask ^ lvp)
        out_pos = rvp & (mask ^ rsp) & (mask ^ rvn)
        kill_right = rvp & rvn
        in_neg = rvn & (mask ^ rsn) & (mask ^ rvp)
        return _sub(
            _count3(in_pos, kill_left, out_neg),
            _count3(out_pos, kill_right, in_neg),
            self._WIDTH,
            self.mask,
        )

    def observe(self, cycle, v, k, alive):
        occ = self._occupancy(v)
        delta = self._delta(v)
        out: List[Tuple[int, Violation]] = []
        if self._prev is not None:
            prev_occ, prev_delta = self._prev
            expected = _add(prev_occ, prev_delta, self._WIDTH, self.mask)
            mismatch = 0
            for got, want in zip(occ, expected):
                mismatch |= got ^ want
            for lane in _lanes_of(mismatch & alive):
                out.append((
                    lane,
                    Violation(
                        cycle,
                        self.name,
                        f"occupancy {_plane_int(prev_occ, lane)} + delta "
                        f"{_plane_int(prev_delta, lane)} "
                        f"!= observed {_plane_int(occ, lane)}",
                    ),
                ))
        self._prev = (occ, delta)
        return out


class BatchGoldenMonitor(BatchMonitor):
    """Word-wide lock-step comparison against a golden plane trace.

    ``golden[cycle]`` holds one ``(gv, gk)`` pair per observed wire;
    lanes are claimed by the first mismatching wire, like the scalar
    monitor's wire loop.  With both sides canonical (``v & ~k == 0``),
    ``(k ^ gk) | (v ^ gv)`` is nonzero exactly on the lanes where the
    scalar ``got != want`` holds -- ``X`` matches only ``X``.
    """

    name = "golden"

    def __init__(
        self,
        wires: Sequence[str],
        golden: Sequence[Sequence[Tuple[int, int]]],
        sim: BatchSimulator,
    ) -> None:
        self.wires = list(wires)
        self._slots = [sim.slot(w) for w in wires]
        self.golden = golden

    @classmethod
    def from_scalar(
        cls,
        wires: Sequence[str],
        golden: Sequence[Mapping[str, Value]],
        sim: BatchSimulator,
    ) -> "BatchGoldenMonitor":
        """Broadcast a scalar golden trace to every lane."""
        lanes = sim.lanes
        trace = [
            [broadcast(reference.get(w), lanes) for w in wires]
            for reference in golden
        ]
        return cls(wires, trace, sim)

    def observe(self, cycle, v, k, alive):
        if cycle >= len(self.golden):
            return []
        out: List[Tuple[int, Violation]] = []
        claimed = 0
        reference = self.golden[cycle]
        for i, slot in enumerate(self._slots):
            gv, gk = reference[i]
            mismatch = ((k[slot] ^ gk) | (v[slot] ^ gv)) & alive & ~claimed
            if not mismatch:
                continue
            claimed |= mismatch
            for lane in _lanes_of(mismatch):
                want = unpack_lane((gv, gk), lane)
                got = unpack_lane((v[slot], k[slot]), lane)
                out.append((
                    lane,
                    Violation(
                        cycle,
                        f"{self.name}[{self.wires[i]}]",
                        f"expected {want!r}, observed {got!r}",
                    ),
                ))
        return out


def batch_monitor_bank(
    target: RtlTarget, sim: BatchSimulator, golden: BatchGoldenMonitor
) -> List[BatchMonitor]:
    """A fresh word-wide monitor bank in the scalar bank's order."""
    bank: List[BatchMonitor] = []
    for ch in target.channels:
        bank.append(BatchInvariantMonitor(ch, sim))
        bank.append(BatchPersistenceMonitor(ch, sim))
    for probe in target.ebs:
        bank.append(BatchEncodingMonitor(probe, sim))
        bank.append(BatchConservationMonitor(probe, sim))
    bank.append(golden)
    return bank


# ----------------------------------------------------------------------
# Harnesses
# ----------------------------------------------------------------------
def lane_overrides(
    injections: Sequence[Injection], time: int
) -> Dict[str, LaneOverride]:
    """Per-net override masks for one cycle, lane ``i`` = injection ``i``."""
    overrides: Dict[str, LaneOverride] = {}
    for lane, injection in enumerate(injections):
        if not injection.active(time):
            continue
        override = overrides.setdefault(injection.net, LaneOverride())
        bit = 1 << lane
        if injection.kind == "stuck0":
            override.set0 |= bit
        elif injection.kind == "stuck1":
            override.set1 |= bit
        else:
            override.flip |= bit
    return overrides


def _activity_edges(injections: Sequence[Injection]) -> frozenset:
    """The cycles where some injection switches on or off."""
    edges = set()
    for injection in injections:
        edges.add(injection.cycle)
        if injection.duration is not None:
            edges.add(injection.cycle + injection.duration)
    return frozenset(edges)


class BatchCampaignHarness:
    """One target + one stimulus, many faults per simulation.

    :meth:`run_chunk` takes up to ``lanes`` injections and classifies
    all of them in a single lane-parallel run, returning the same
    :class:`FaultOutcome` objects (same order, same detail strings) the
    scalar :class:`~repro.faults.campaign.CampaignHarness` would.
    """

    def __init__(
        self,
        target: RtlTarget,
        config: CampaignConfig,
        lanes: int = 64,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> None:
        self.target = target
        self.config = config
        self.lanes = lanes
        self.metrics = metrics
        self.sim = self._make_sim()
        self.stimulus = make_stimulus(
            target.free_inputs, config.cycles, config.seed
        )
        self.packed = [
            {name: broadcast(value, lanes) for name, value in inputs.items()}
            for inputs in self.stimulus
        ]
        self.golden: List[Dict[str, Value]] = []
        self.golden_final: Dict[str, Value] = {}
        self._record_golden()
        self._golden_monitor = BatchGoldenMonitor.from_scalar(
            target.observe, self.golden, self.sim
        )

    def _make_sim(self):
        """The lane-parallel simulator driving this harness.

        Overridden by the compiled-backend harness
        (:class:`repro.codegen.harness.CompiledCampaignHarness`); every
        other harness behavior -- golden recording, monitor bank,
        chunk classification -- is backend-agnostic.
        """
        return BatchSimulator(self.target.netlist, self.lanes)

    def _record_golden(self) -> None:
        sim = self.sim
        sim.set_overrides({})
        sim.reset()
        observe = self.target.observe
        for packed in self.packed:
            sim.cycle(packed)
            self.golden.append({w: sim.lane_value(w, 0) for w in observe})
        self.golden_final = sim.lane_state(0)

    def run_chunk(self, injections: Sequence[Injection]) -> List[FaultOutcome]:
        """Classify up to ``lanes`` injections in one batched run."""
        if not injections:
            return []
        if len(injections) > self.lanes:
            raise ValueError(
                f"{len(injections)} injections exceed {self.lanes} lanes"
            )
        sim = self.sim
        sim.reset()
        # Clear the previous chunk's lane overrides (the scalar
        # injector does this in reset()): a stuck fault stays active to
        # the end of its run, and a chunk whose earliest activity edge
        # sits past cycle 0 would otherwise simulate its opening cycles
        # under the previous chunk's faults -- making the verdict depend
        # on which chunk the harness ran before, i.e. on scheduling.
        sim.set_overrides({})
        bank = batch_monitor_bank(self.target, sim, self._golden_monitor)
        alive = (1 << len(injections)) - 1
        found: Dict[int, Violation] = {}
        edges = _activity_edges(injections)
        value_planes = sim.value_planes
        known_planes = sim.known_planes
        metrics = self.metrics
        cycles_run = busy_lanes = 0
        for t, packed in enumerate(self.packed):
            if t in edges:
                sim.set_overrides(lane_overrides(injections, t))
            sim.cycle(packed)
            if metrics is not None:
                cycles_run += 1
                busy_lanes += bin(alive).count("1")
            for monitor in bank:
                for lane, violation in monitor.observe(
                    t, value_planes, known_planes, alive
                ):
                    found[lane] = violation
                    alive &= ~(1 << lane)
                if not alive:
                    break
            if not alive:
                break
        if metrics is not None:
            metrics.counter("batchsim_cycles_total").inc(cycles_run)
            metrics.counter("batchsim_busy_lane_cycles_total").inc(busy_lanes)
            metrics.gauge("batchsim_lane_utilization").set(
                round(busy_lanes / (cycles_run * self.lanes), 6)
                if cycles_run else 0.0
            )
        outcomes: List[FaultOutcome] = []
        for lane, injection in enumerate(injections):
            violation = found.get(lane)
            if violation is not None:
                outcomes.append(FaultOutcome(
                    fault=injection.label(),
                    status="detected",
                    monitor=violation.monitor,
                    detection_cycle=violation.cycle,
                    detail=violation.detail,
                ))
                continue
            final = sim.lane_state(lane)
            if final != self.golden_final:
                diverged = sorted(
                    s for s, v in final.items()
                    if self.golden_final.get(s) != v
                )
                outcomes.append(FaultOutcome(
                    fault=injection.label(),
                    status="latent",
                    detail=f"state diverged: {', '.join(diverged[:4])}",
                ))
            else:
                outcomes.append(FaultOutcome(
                    fault=injection.label(), status="undetected"
                ))
        return outcomes


def _seed_sweep_chunk(
    tgt: RtlTarget,
    injection: Injection,
    seeds: Sequence[int],
    cfg: CampaignConfig,
) -> List[FaultOutcome]:
    """One batched golden+faulty pass over up to a word of seeds."""
    lanes = len(seeds)
    sim = BatchSimulator(tgt.netlist, lanes)
    stimuli = [
        make_stimulus(tgt.free_inputs, cfg.cycles, seed) for seed in seeds
    ]
    packed = pack_stimulus(stimuli)
    observe = tgt.observe

    sim.set_overrides({})
    sim.reset()
    golden_trace: List[List[Tuple[int, int]]] = []
    for inputs in packed:
        sim.cycle(inputs)
        golden_trace.append([sim.planes(w) for w in observe])
    golden_final = [sim.lane_state(lane) for lane in range(lanes)]

    sim.reset()
    bank = batch_monitor_bank(
        tgt, sim, BatchGoldenMonitor(observe, golden_trace, sim)
    )
    full = (1 << lanes) - 1
    kind_masks = {
        "stuck0": LaneOverride(set0=full),
        "stuck1": LaneOverride(set1=full),
        "flip": LaneOverride(flip=full),
    }
    alive = full
    found: Dict[int, Violation] = {}
    edges = _activity_edges([injection])
    value_planes = sim.value_planes
    known_planes = sim.known_planes
    for t, inputs in enumerate(packed):
        if t in edges:
            sim.set_overrides(
                {injection.net: kind_masks[injection.kind]}
                if injection.active(t) else {}
            )
        sim.cycle(inputs)
        for monitor in bank:
            for lane, violation in monitor.observe(
                t, value_planes, known_planes, alive
            ):
                found[lane] = violation
                alive &= ~(1 << lane)
            if not alive:
                break
        if not alive:
            break
    outcomes: List[FaultOutcome] = []
    for lane in range(lanes):
        violation = found.get(lane)
        if violation is not None:
            outcomes.append(FaultOutcome(
                fault=injection.label(),
                status="detected",
                monitor=violation.monitor,
                detection_cycle=violation.cycle,
                detail=violation.detail,
            ))
            continue
        final = sim.lane_state(lane)
        if final != golden_final[lane]:
            diverged = sorted(
                s for s, v in final.items()
                if golden_final[lane].get(s) != v
            )
            outcomes.append(FaultOutcome(
                fault=injection.label(),
                status="latent",
                detail=f"state diverged: {', '.join(diverged[:4])}",
            ))
        else:
            outcomes.append(FaultOutcome(
                fault=injection.label(), status="undetected"
            ))
    return outcomes


def run_seed_sweep(
    target,
    injection: Injection,
    seeds: Sequence[int],
    config: Optional[CampaignConfig] = None,
    lanes: int = 64,
    checkpoint: Optional[str] = None,
) -> List[FaultOutcome]:
    """One fault under many stimulus seeds, one seed per lane.

    Lane ``i`` replays the campaign of ``CampaignConfig(seed=seeds[i])``
    -- its own stimulus, its own golden reference -- batched ``lanes``
    seeds at a time (golden + faulty run per batch).  Returns one
    outcome per seed, each identical to what the scalar harness reports
    for that seed (untestable analysis is a per-fault property and is
    left to the caller).

    ``checkpoint`` names a directory that persists each completed seed
    batch atomically; rerunning with the same directory validates the
    sweep fingerprint, skips finished batches and returns the same
    outcome list an uninterrupted sweep would.
    """
    cfg = config or CampaignConfig()
    if lanes < 1:
        raise ValueError("lanes must be >= 1")
    tgt = resolve_target(target)
    seeds = list(seeds)
    chunks = [seeds[i:i + lanes] for i in range(0, len(seeds), lanes)]
    store: Optional[CheckpointStore] = None
    by_index: Dict[int, List[FaultOutcome]] = {}
    if checkpoint is not None:
        store = CheckpointStore(checkpoint)
        store.ensure_manifest({
            "kind": "seed_sweep",
            "target": tgt.name,
            "injection": injection.label(),
            "cycles": cfg.cycles,
            "seeds": seeds,
            "lanes": lanes,
        })
        for index, payload in store.chunks().items():
            if 0 <= index < len(chunks) and isinstance(payload, list):
                by_index[index] = [FaultOutcome(**d) for d in payload]
    for index, chunk in enumerate(chunks):
        if index in by_index:
            continue
        outcomes = _seed_sweep_chunk(tgt, injection, chunk, cfg)
        by_index[index] = outcomes
        if store is not None:
            store.save_chunk(index, [o.to_dict() for o in outcomes])
    return [o for index in sorted(by_index) for o in by_index[index]]
