"""Online SELF protocol monitors for fault campaigns.

Unlike :class:`~repro.elastic.protocol.ProtocolMonitor` (which raises,
aborting the run), these monitors *report*: each returns the first
:class:`Violation` it observes so a campaign can record which checker
caught a fault and at which cycle, then keep sweeping.

Per dual channel ``{V+, S+, V−, S−}``:

* :class:`InvariantMonitor` -- equation (2): ``V+ → ¬S−`` and
  ``V− → ¬S+`` every cycle;
* :class:`PersistenceMonitor` -- Retry+ keeps ``V+`` asserted, Retry−
  keeps ``V−`` (the ``(I*R*T)*`` language of Fig. 2 and its dual);

per dual elastic buffer (the Fig. 5 EB):

* :class:`EncodingMonitor` -- the thermometer state encoding
  (``t1 ≤ t0``, ``a1 ≤ a0``) and token/anti-token exclusion
  (``¬(t0 ∧ a0)``: a signed occupancy never holds both);
* :class:`ConservationMonitor` -- token/anti-token conservation: the
  signed occupancy read from the state bits changes exactly by the
  boundary events (transfers and kills) of the previous cycle;

and against a fault-free reference run:

* :class:`GoldenMonitor` -- data/behaviour correctness: every observed
  wire must match the golden trace cycle by cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.elastic.gates import GateChannel
from repro.rtl.logic import Value


@dataclass(frozen=True)
class Violation:
    """One monitor firing: which rule broke, where, and when."""

    cycle: int
    monitor: str
    detail: str

    def __str__(self) -> str:
        return f"cycle {self.cycle}: {self.monitor}: {self.detail}"


class Monitor:
    """Base class: observe one settled cycle's signal values."""

    name = "monitor"

    def observe(
        self, cycle: int, values: Mapping[str, Value]
    ) -> Optional[Violation]:
        raise NotImplementedError

    def reset(self) -> None:
        """Forget history before a new run."""


def _bit(values: Mapping[str, Value], sig: str) -> int:
    """Read a wire as a strict bit (X counts as 0)."""
    return 1 if values.get(sig) == 1 else 0


class InvariantMonitor(Monitor):
    """Equation (2) on one channel: ``¬(V− ∧ S+)`` and ``¬(V+ ∧ S−)``."""

    def __init__(self, channel: GateChannel) -> None:
        self.channel = channel
        self.name = f"invariant[{channel.name}]"

    def observe(self, cycle, values):
        ch = self.channel
        vp, sp = _bit(values, ch.vp), _bit(values, ch.sp)
        vn, sn = _bit(values, ch.vn), _bit(values, ch.sn)
        if vn and sp:
            return Violation(cycle, self.name, "V- and S+ both asserted")
        if vp and sn:
            return Violation(cycle, self.name, "V+ and S- both asserted")
        return None


class PersistenceMonitor(Monitor):
    """Retry persistence on one channel, positive and negative flows."""

    def __init__(self, channel: GateChannel) -> None:
        self.channel = channel
        self.name = f"persistence[{channel.name}]"
        self._pending_pos = False
        self._pending_neg = False

    def reset(self) -> None:
        self._pending_pos = False
        self._pending_neg = False

    def observe(self, cycle, values):
        ch = self.channel
        vp, sp = _bit(values, ch.vp), _bit(values, ch.sp)
        vn, sn = _bit(values, ch.vn), _bit(values, ch.sn)
        violation = None
        if self._pending_pos and not vp:
            violation = Violation(
                cycle, self.name, "V+ dropped during Retry+"
            )
        elif self._pending_neg and not vn:
            violation = Violation(
                cycle, self.name, "V- dropped during Retry-"
            )
        # A kill resolves both flows; only a genuine retry carries over.
        self._pending_pos = bool(vp and sp and not vn)
        self._pending_neg = bool(vn and sn and not vp)
        return violation


@dataclass(frozen=True)
class EbProbe:
    """Where to find one gate-level dual EB: state bits and boundaries."""

    prefix: str
    left: GateChannel
    right: GateChannel

    @property
    def state_bits(self) -> Sequence[str]:
        p = self.prefix
        return (f"{p}.t0", f"{p}.t1", f"{p}.a0", f"{p}.a1")

    def occupancy(self, values: Mapping[str, Value]) -> int:
        """Signed occupancy decoded from the thermometer state bits."""
        t0, t1, a0, a1 = (_bit(values, s) for s in self.state_bits)
        return (t0 + t1) - (a0 + a1)


class EncodingMonitor(Monitor):
    """Thermometer-code invariants of the EB state bits."""

    def __init__(self, probe: EbProbe) -> None:
        self.probe = probe
        self.name = f"encoding[{probe.prefix}]"

    def observe(self, cycle, values):
        t0, t1, a0, a1 = (_bit(values, s) for s in self.probe.state_bits)
        if t1 > t0:
            return Violation(cycle, self.name, "t1 set without t0")
        if a1 > a0:
            return Violation(cycle, self.name, "a1 set without a0")
        if t0 and a0:
            return Violation(cycle, self.name, "tokens and anti-tokens coexist")
        return None


def _boundary_delta(
    probe: EbProbe, values: Mapping[str, Value]
) -> int:
    """Occupancy change implied by one cycle's boundary events.

    Mirrors the behavioural :class:`ElasticBuffer` commit arithmetic:
    ``+1`` for a token entering or a stored anti-token resolving at the
    input boundary, ``-1`` for a token leaving / being killed at the
    output boundary or an anti-token entering there.
    """
    l, r = probe.left, probe.right
    lvp, lsp, lvn = _bit(values, l.vp), _bit(values, l.sp), _bit(values, l.vn)
    lsn = _bit(values, l.sn)
    rvp, rsp, rvn = _bit(values, r.vp), _bit(values, r.sp), _bit(values, r.vn)
    rsn = _bit(values, r.sn)
    in_pos = lvp and not lsp and not lvn
    kill_left = lvp and lvn
    out_neg = lvn and not lsn and not lvp
    out_pos = rvp and not rsp and not rvn
    kill_right = rvp and rvn
    in_neg = rvn and not rsn and not rvp
    return (
        (1 if in_pos else 0)
        + (1 if kill_left else 0)
        + (1 if out_neg else 0)
        - (1 if out_pos else 0)
        - (1 if kill_right else 0)
        - (1 if in_neg else 0)
    )


class ConservationMonitor(Monitor):
    """Tokens are conserved: occupancy moves only by boundary events.

    With flip-flop state the values observed at cycle ``t`` hold the
    occupancy *during* ``t`` (pre-update), so the check is
    ``occ(t) == occ(t-1) + delta(events at t-1)``.
    """

    def __init__(self, probe: EbProbe) -> None:
        self.probe = probe
        self.name = f"conservation[{probe.prefix}]"
        self._prev: Optional[tuple] = None  # (occupancy, delta)

    def reset(self) -> None:
        self._prev = None

    def observe(self, cycle, values):
        occ = self.probe.occupancy(values)
        delta = _boundary_delta(self.probe, values)
        violation = None
        if self._prev is not None:
            prev_occ, prev_delta = self._prev
            if occ != prev_occ + prev_delta:
                violation = Violation(
                    cycle,
                    self.name,
                    f"occupancy {prev_occ} + delta {prev_delta} "
                    f"!= observed {occ}",
                )
        self._prev = (occ, delta)
        return violation


class GoldenMonitor(Monitor):
    """Lock-step comparison against a fault-free reference trace."""

    name = "golden"

    def __init__(
        self, wires: Sequence[str], golden: Sequence[Mapping[str, Value]]
    ) -> None:
        self.wires = list(wires)
        self.golden = golden

    def observe(self, cycle, values):
        if cycle >= len(self.golden):
            return None
        reference = self.golden[cycle]
        for wire in self.wires:
            got, want = values.get(wire), reference.get(wire)
            if got != want:
                return Violation(
                    cycle,
                    f"{self.name}[{wire}]",
                    f"expected {want!r}, observed {got!r}",
                )
        return None


def channel_monitors(channels: Sequence[GateChannel]) -> List[Monitor]:
    """The per-channel protocol monitors for a set of channels."""
    monitors: List[Monitor] = []
    for ch in channels:
        monitors.append(InvariantMonitor(ch))
        monitors.append(PersistenceMonitor(ch))
    return monitors


def buffer_monitors(probes: Sequence[EbProbe]) -> List[Monitor]:
    """The per-EB state monitors for a set of buffer probes."""
    monitors: List[Monitor] = []
    for probe in probes:
        monitors.append(EncodingMonitor(probe))
        monitors.append(ConservationMonitor(probe))
    return monitors
