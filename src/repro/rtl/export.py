"""Netlist export backends: Verilog, BLIF and SMV.

The paper's framework "can generate Verilog models for simulation, SMV
models for verification and BLIF models for logic synthesis with SIS";
this module regenerates all three from a :class:`~repro.rtl.netlist.
Netlist` so the controllers built here can be taken to external tools:

* :func:`to_verilog` -- synthesizable structural Verilog with
  two-phase transparent latches and rising-edge flip-flops;
* :func:`to_blif`   -- Berkeley Logic Interchange Format (the SIS
  input format used for the paper's area numbers);
* :func:`to_smv`    -- a NuSMV module with the netlist as a
  transition system, optionally carrying the paper's CTL channel
  properties as ``SPEC`` clauses.

The writers are deliberately simple and deterministic (sorted cell
order) so their output is diff-stable and easy to test.

The Verilog and BLIF writers append a *source-map* comment block
(``repro.sourcemap 1``) after the body: the original netlist name, the
ident-to-raw-name table, every cell in netlist insertion order with its
exact gate op, and (Verilog only, which cannot express them) the
X-initialised state bits.  The :mod:`repro.lint.frontends` parsers use
the block to reconstruct a netlist whose fingerprint matches the
exported one bit-for-bit; foreign files without the block still parse,
just without guaranteed fingerprint equality.
"""

from __future__ import annotations

import json
import re
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.rtl.logic import X
from repro.rtl.netlist import FlipFlop, Gate, Latch, Netlist, Phase

_IDENT = re.compile(r"[^A-Za-z0-9_]")


def _sanitize(name: str) -> str:
    """Map an arbitrary signal name to a legal HDL identifier."""
    out = _IDENT.sub("_", name)
    if out[0].isdigit():
        out = "s_" + out
    return out


def _name_map(netlist: Netlist) -> Dict[str, str]:
    """Collision-free identifier map for all signals."""
    mapping: Dict[str, str] = {}
    used: Dict[str, int] = {}
    for sig in sorted(netlist.signals()):
        base = _sanitize(sig)
        if base in used:
            used[base] += 1
            ident = f"{base}_{used[base]}"
        else:
            used[base] = 0
            ident = base
        mapping[sig] = ident
    return mapping


def _sourcemap_lines(
    netlist: Netlist,
    nm: Mapping[str, str],
    prefix: str,
    xinit: bool = False,
) -> List[str]:
    """The ``repro.sourcemap 1`` comment block shared by both writers.

    ``.sig`` lines map emitted identifiers back to raw signal names
    (only where they differ); ``.cell`` lines record every gate (with
    its exact op -- several ops share a BLIF cover), latch and flop in
    netlist *insertion* order, which the writers' sorted bodies lose
    but the fingerprint preserves; ``.xinit`` lines (Verilog) mark the
    state bits whose X reset value the HDL cannot express.
    """
    lines = [
        f"{prefix} repro.sourcemap 1",
        f"{prefix} .netlist {json.dumps(netlist.name)}",
    ]
    for sig in sorted(netlist.signals(), key=lambda s: nm[s]):
        if nm[sig] != sig:
            lines.append(f"{prefix} .sig {nm[sig]} {json.dumps(sig)}")
    for out, gate in netlist.gates.items():
        lines.append(f"{prefix} .cell gate {gate.op} {json.dumps(out)}")
    for q in netlist.latches:
        lines.append(f"{prefix} .cell latch {json.dumps(q)}")
    for q in netlist.flops:
        lines.append(f"{prefix} .cell flop {json.dumps(q)}")
    if xinit:
        # Verilog-only repairs: the port list cannot re-declare an input
        # as an output (the raw output list is recorded instead) and the
        # HDL has no X reset value.
        lines.append(f"{prefix} .outputs {json.dumps(list(netlist.outputs))}")
        for q, latch in netlist.latches.items():
            if latch.init is X:
                lines.append(f"{prefix} .xinit {json.dumps(q)}")
        for q, flop in netlist.flops.items():
            if flop.init is X:
                lines.append(f"{prefix} .xinit {json.dumps(q)}")
    return lines


# ----------------------------------------------------------------------
# Verilog
# ----------------------------------------------------------------------
_VERILOG_OPS = {
    "AND": " & ",
    "OR": " | ",
    "NAND": " & ",
    "NOR": " | ",
}


def _verilog_expr(gate: Gate, nm: Mapping[str, str]) -> str:
    ins = [nm[i] for i in gate.ins]
    op = gate.op
    if not ins and op in ("AND", "OR", "NAND", "NOR"):
        # empty variadic gates are constants: AND()=1, OR()=0, and the
        # inverting forms flip (matches the ternary land()/lor() bases)
        return "1'b1" if op in ("AND", "NOR") else "1'b0"
    if op in ("AND", "OR"):
        return _VERILOG_OPS[op].join(ins)
    if op in ("NAND", "NOR"):
        return "~(" + _VERILOG_OPS[op].join(ins) + ")"
    if op == "NOT":
        return f"~{ins[0]}"
    if op == "BUF":
        return ins[0]
    if op == "XOR":
        return f"{ins[0]} ^ {ins[1]}"
    if op == "MUX":
        return f"{ins[0]} ? {ins[1]} : {ins[2]}"
    if op == "CONST0":
        return "1'b0"
    if op == "CONST1":
        return "1'b1"
    raise AssertionError(f"unhandled op {op}")


def to_verilog(netlist: Netlist, module: Optional[str] = None) -> str:
    """Emit the netlist as a structural Verilog module.

    Transparent latches become level-sensitive ``always @*`` processes
    gated by ``clk`` (H latches) or ``~clk`` (L latches); flip-flops are
    rising-edge.  A ``rst`` input applies the declared init values.
    """
    nm = _name_map(netlist)
    module = module or _sanitize(netlist.name)
    ports = ["clk", "rst"]
    ports += [nm[i] for i in netlist.inputs]
    ports += [nm[o] for o in netlist.outputs if o not in netlist.inputs]
    lines: List[str] = [f"module {module} ("]
    lines.append("    " + ",\n    ".join(ports))
    lines.append(");")
    lines.append("  input clk, rst;")
    for i in netlist.inputs:
        lines.append(f"  input {nm[i]};")
    for o in netlist.outputs:
        if o not in netlist.inputs:
            lines.append(f"  output {nm[o]};")
    for out, gate in sorted(netlist.gates.items()):
        lines.append(f"  wire {nm[out]};")
    for q in sorted(netlist.latches):
        lines.append(f"  reg {nm[q]};")
    for q in sorted(netlist.flops):
        lines.append(f"  reg {nm[q]};")
    lines.append("")
    for out, gate in sorted(netlist.gates.items()):
        lines.append(f"  assign {nm[out]} = {_verilog_expr(gate, nm)};")
    lines.append("")
    for q, latch in sorted(netlist.latches.items()):
        gate_cond = "clk" if latch.phase is Phase.HIGH else "~clk"
        init = 0 if latch.init is X else latch.init
        lines.append("  always @* begin")
        lines.append(f"    if (rst) {nm[q]} = 1'b{init};")
        lines.append(f"    else if ({gate_cond}) {nm[q]} = {nm[latch.d]};")
        lines.append("  end")
    if netlist.flops:
        lines.append("")
        lines.append("  always @(posedge clk) begin")
        for q, flop in sorted(netlist.flops.items()):
            init = 0 if flop.init is X else flop.init
            lines.append(
                f"    {nm[q]} <= rst ? 1'b{init} : {nm[flop.d]};"
            )
        lines.append("  end")
    lines.append("endmodule")
    lines.extend(_sourcemap_lines(netlist, nm, "//", xinit=True))
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# BLIF
# ----------------------------------------------------------------------
def _blif_cover(gate: Gate, nm: Mapping[str, str]) -> List[str]:
    """The .names cover rows of one gate."""
    n = len(gate.ins)
    op = gate.op
    if op == "AND":
        return ["1" * n + " 1"]
    if op == "NAND":
        return [("-" * i + "0" + "-" * (n - i - 1) + " 1") for i in range(n)]
    if op == "OR":
        return [("-" * i + "1" + "-" * (n - i - 1) + " 1") for i in range(n)]
    if op == "NOR":
        return ["0" * n + " 1"]
    if op == "NOT":
        return ["0 1"]
    if op == "BUF":
        return ["1 1"]
    if op == "XOR":
        return ["10 1", "01 1"]
    if op == "MUX":  # (sel, when1, when0)
        return ["11- 1", "0-1 1"]
    if op == "CONST1":
        return [" 1"]  # constant-1 function
    if op == "CONST0":
        return []  # empty cover = constant 0
    raise AssertionError(f"unhandled op {op}")


def to_blif(netlist: Netlist, model: Optional[str] = None) -> str:
    """Emit the netlist in BLIF (SIS input) format.

    Transparent latches and flip-flops both become ``.latch`` lines;
    latch phases are encoded with BLIF's ``ah``/``al`` (active-high /
    active-low) types and flip-flops with ``re`` (rising edge), all
    clocked by ``clk``.
    """
    nm = _name_map(netlist)
    model = model or _sanitize(netlist.name)
    lines = [f".model {model}"]
    if netlist.inputs:
        lines.append(".inputs " + " ".join(nm[i] for i in netlist.inputs))
    if netlist.outputs:
        lines.append(".outputs " + " ".join(nm[o] for o in netlist.outputs))
    lines.append(".clock clk")
    for q, latch in sorted(netlist.latches.items()):
        kind = "ah" if latch.phase is Phase.HIGH else "al"
        init = 3 if latch.init is X else latch.init
        lines.append(f".latch {nm[latch.d]} {nm[q]} {kind} clk {init}")
    for q, flop in sorted(netlist.flops.items()):
        init = 3 if flop.init is X else flop.init
        lines.append(f".latch {nm[flop.d]} {nm[q]} re clk {init}")
    for out, gate in sorted(netlist.gates.items()):
        ins = " ".join(nm[i] for i in gate.ins)
        header = f".names {ins} {nm[out]}".replace("  ", " ")
        lines.append(header)
        lines.extend(_blif_cover(gate, nm))
    lines.append(".end")
    lines.extend(_sourcemap_lines(netlist, nm, "#"))
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# SMV
# ----------------------------------------------------------------------
def _smv_expr(gate: Gate, nm: Mapping[str, str]) -> str:
    ins = [nm[i] for i in gate.ins]
    op = gate.op
    if op == "AND":
        return "(" + " & ".join(ins) + ")"
    if op == "OR":
        return "(" + " | ".join(ins) + ")"
    if op == "NAND":
        return "!(" + " & ".join(ins) + ")"
    if op == "NOR":
        return "!(" + " | ".join(ins) + ")"
    if op == "NOT":
        return f"!{ins[0]}"
    if op == "BUF":
        return ins[0]
    if op == "XOR":
        return f"({ins[0]} xor {ins[1]})"
    if op == "MUX":
        return f"({ins[0]} ? {ins[1]} : {ins[2]})"
    if op == "CONST0":
        return "FALSE"
    if op == "CONST1":
        return "TRUE"
    raise AssertionError(f"unhandled op {op}")


def to_smv(
    netlist: Netlist,
    specs: Sequence[str] = (),
    fairness: Sequence[str] = (),
) -> str:
    """Emit a NuSMV model of the netlist.

    The cycle-level semantics is used: flip-flops and latch pairs
    become ``next(...)`` assignments (a master/slave latch pair is
    collapsed onto its slave; standalone latches are treated as
    registers of their capture phase).  Primary inputs are free
    variables.  ``specs`` are CTL formulas over the *original* signal
    names (they are re-written with the same sanitiser), appended as
    ``SPEC`` clauses; ``fairness`` likewise as ``FAIRNESS``.
    """
    nm = _name_map(netlist)
    lines = ["MODULE main", "VAR"]
    for i in netlist.inputs:
        lines.append(f"  {nm[i]} : boolean;")
    state_elems: List[Tuple[str, str, object]] = []
    for q, latch in sorted(netlist.latches.items()):
        state_elems.append((q, latch.d, latch.init))
    for q, flop in sorted(netlist.flops.items()):
        state_elems.append((q, flop.d, flop.init))
    for q, _, _ in state_elems:
        lines.append(f"  {nm[q]} : boolean;")
    lines.append("DEFINE")
    for out, gate in sorted(netlist.gates.items()):
        lines.append(f"  {nm[out]} := {_smv_expr(gate, nm)};")
    lines.append("ASSIGN")
    for q, d, init in state_elems:
        if init is not X:
            lines.append(f"  init({nm[q]}) := {'TRUE' if init else 'FALSE'};")
        lines.append(f"  next({nm[q]}) := {nm[d]};")
    for formula in specs:
        lines.append(f"SPEC {_rewrite_names(formula, nm)}")
    for constraint in fairness:
        lines.append(f"FAIRNESS {_rewrite_names(constraint, nm)}")
    return "\n".join(lines) + "\n"


def _rewrite_names(formula: str, nm: Mapping[str, str]) -> str:
    """Replace raw signal names in a formula with sanitised ones."""
    out = formula
    # longest-first so 'c1.vp' is replaced before 'c1'
    for raw in sorted(nm, key=len, reverse=True):
        if raw in out:
            out = out.replace(raw, nm[raw])
    return out


def channel_specs_smv(channels: Iterable) -> List[str]:
    """The paper's four CTL properties, as NuSMV SPEC strings.

    ``channels`` are :class:`~repro.elastic.gates.GateChannel` objects;
    signal names are left raw (``to_smv`` sanitises them).
    """
    specs: List[str] = []
    for ch in channels:
        vp, sp, vn, sn = ch.vp, ch.sp, ch.vn, ch.sn
        specs.append(f"AG (({vp} & {sp}) -> AX {vp})")
        specs.append(f"AG (({vn} & {sn}) -> AX {vn})")
        specs.append(f"AG (!({vn} & {sp}) & !({vp} & {sn}))")
        specs.append(f"AG AF (({vp} & !{sp}) | ({vn} & !{sn}))")
    return specs
