"""Bit-parallel two-phase simulation: 64 lanes per Python int.

:class:`BatchSimulator` simulates ``lanes`` independent copies of one
:class:`~repro.rtl.netlist.Netlist` at once.  Lane ``i`` of every signal
lives in bit ``i`` of a pair of machine words, the **two-plane
encoding**:

* plane ``v`` -- the value bit, and
* plane ``k`` -- the *known* bit: lane ``i`` carries a definite 0/1 iff
  bit ``i`` of ``k`` is set; a clear ``k`` bit means the lane is ``X``.

The canonical invariant ``v & ~k == 0`` holds everywhere (an unknown
lane's value bit is 0), which keeps the word-wide gate formulas below
exactly equivalent to the ternary operators in :mod:`repro.rtl.logic`:

=====  =============================================================
gate   two-plane formula (per 64 lanes in one pass)
=====  =============================================================
AND    ``rv = va & vb``; known iff some known-0 input or both known-1:
       ``rk = rv | (ka & ~va) | (kb & ~vb)``
OR     ``rv = va | vb``; ``rk = rv | (ka & ~va) & (kb & ~vb)``
NOT    ``rk = ka``; ``rv = ka & ~va``
XOR    ``rk = ka & kb``; ``rv = (va ^ vb) & rk``
MUX    known select steers; an X select still resolves lanes where
       both data inputs agree on a known value (X-reduction, matching
       :func:`repro.rtl.logic.lmux`)
=====  =============================================================

Unlike :class:`~repro.rtl.simulator.TwoPhaseSimulator`, which iterates a
ternary fixed point, the batch kernel is compiled: each clock phase
becomes a flat topologically-sorted instruction list (variadic gates
decomposed into binary chains through temporaries), so every gate is
evaluated exactly once per phase for all lanes.  Compilation therefore
requires each phase's combinational graph to be acyclic and raises the
same :class:`~repro.rtl.toposort.CombinationalCycleError` (with the
full cycle path) that the scalar simulator's strict mode reports.

Fault injection is lane-granular: a :class:`LaneOverride` carries three
masks (``set0``/``set1``/``flip``) and is applied at exactly the points
the scalar simulator applies its net overrides -- primary inputs, state
loads, every gate output and transparent-latch outputs -- so a batch of
64 single-fault lanes reproduces 64 scalar fault runs bit-for-bit.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.codegen import kernel as _kernel
from repro.rtl.logic import Value, X, is_known
from repro.rtl.netlist import Netlist, Phase

__all__ = [
    "BatchSimulator",
    "LaneOverride",
    "Planes",
    "broadcast",
    "pack_values",
    "pack_stimulus",
    "strict_planes",
    "unpack_lane",
]

#: The two-plane word pair ``(v, k)`` for one signal across all lanes.
Planes = Tuple[int, int]

# Instruction opcodes, shared with the on-disk code generator: the
# decomposition, phase ordering and per-gate statement strings all live
# in repro.codegen.kernel, so the batch kernel and the compiled backend
# lower a netlist through literally the same pipeline.
_AND, _OR, _NOT, _XOR, _MUX, _BUF, _C0, _C1 = (
    _kernel.AND, _kernel.OR, _kernel.NOT, _kernel.XOR,
    _kernel.MUX, _kernel.BUF, _kernel.C0, _kernel.C1,
)

_DECOMPOSED = _kernel.DECOMPOSED


def broadcast(value: Value, lanes: int = 64) -> Planes:
    """The same ternary value in every lane."""
    mask = (1 << lanes) - 1
    if not is_known(value):
        return (0, 0)
    return (mask if value else 0, mask)


def pack_values(values: Sequence[Value]) -> Planes:
    """Pack one ternary value per lane, lane ``i`` from ``values[i]``."""
    v = k = 0
    for lane, value in enumerate(values):
        if is_known(value):
            k |= 1 << lane
            if value:
                v |= 1 << lane
    return (v, k)


def unpack_lane(planes: Planes, lane: int) -> Value:
    """The ternary value of one lane of a two-plane word pair."""
    bit = 1 << lane
    if not planes[1] & bit:
        return X
    return 1 if planes[0] & bit else 0


def strict_planes(sim, sig: str) -> Planes:
    """``(ones, zeros)`` lane masks of a signal, strict-bit style.

    Bit ``i`` of ``ones`` is set iff lane ``i`` is *known* 1, of
    ``zeros`` iff it is known 0; an ``X`` lane appears in neither --
    the word-wide analogue of the strict comparisons ``sig == 1`` /
    ``sig == 0`` the protocol classifiers use.  ``sim`` is any
    simulator with the two-plane ``planes()`` accessor
    (:class:`BatchSimulator` or the compiled backend), which is where
    the per-lane watchdogs and the channel profiler read from.
    """
    v, k = sim.planes(sig)
    return (v & k, k & ~v)


def pack_stimulus(
    stimuli: Sequence[Sequence[Mapping[str, Value]]],
) -> List[Dict[str, Planes]]:
    """Pack per-lane stimulus traces into per-cycle plane words.

    ``stimuli[lane][cycle]`` maps input names to ternary values; inputs
    a lane leaves unmentioned are ``X`` for that lane.  All lanes must
    supply the same number of cycles.  Returns one ``{input: planes}``
    dict per cycle, ready for :meth:`BatchSimulator.cycle`.
    """
    lengths = {len(trace) for trace in stimuli}
    if len(lengths) > 1:
        raise ValueError(f"stimulus traces differ in length: {sorted(lengths)}")
    cycles = lengths.pop() if lengths else 0
    packed: List[Dict[str, Planes]] = []
    for t in range(cycles):
        planes: Dict[str, List[int]] = {}
        for lane, trace in enumerate(stimuli):
            bit = 1 << lane
            for name, value in trace[t].items():
                vk = planes.setdefault(name, [0, 0])
                if is_known(value):
                    vk[1] |= bit
                    if value:
                        vk[0] |= bit
        packed.append({name: (vk[0], vk[1]) for name, vk in planes.items()})
    return packed


class LaneOverride:
    """Per-lane net override masks for the batch kernel.

    Lane ``i`` is forced to 0 (1) when bit ``i`` of ``set0`` (``set1``)
    is set, and inverted when bit ``i`` of ``flip`` is set.  A flip on
    an unknown lane leaves it ``X``, matching the scalar ``lnot``
    override.  Masks for different lanes are independent, so one object
    carries a whole batch of injections on the same net.
    """

    __slots__ = ("set0", "set1", "flip")

    def __init__(self, set0: int = 0, set1: int = 0, flip: int = 0) -> None:
        if set0 & set1:
            raise ValueError("a lane cannot be stuck at both 0 and 1")
        self.set0 = set0
        self.set1 = set1
        self.flip = flip

    def apply(self, v: int, k: int) -> Planes:
        """The forced planes given fault-free planes ``(v, k)``."""
        if self.set0 or self.set1:
            v = (v & ~self.set0) | self.set1
            k = k | self.set0 | self.set1
        if self.flip:
            v ^= self.flip & k
        return v, k

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LaneOverride(set0={self.set0:#x}, set1={self.set1:#x}, "
            f"flip={self.flip:#x})"
        )


class BatchSimulator:
    """Lane-parallel counterpart of :class:`TwoPhaseSimulator`.

    The public cadence mirrors the scalar simulator -- :meth:`reset`,
    then :meth:`cycle` once per clock with packed inputs -- but every
    call advances all ``lanes`` copies at once.  After :meth:`cycle` the
    plane words hold the end-of-LOW-phase values, the batch analogue of
    the scalar ``values`` dict.
    """

    def __init__(self, netlist: Netlist, lanes: int = 64) -> None:
        if lanes < 1:
            raise ValueError("need at least one lane")
        netlist.validate()
        self.netlist = netlist
        self.lanes = lanes
        self.mask = (1 << lanes) - 1

        nl = netlist
        self._slot: Dict[str, int] = {}
        for sig in (*nl.inputs, *nl.gates, *nl.latches, *nl.flops):
            self._slot[sig] = len(self._slot)
        self._inputs = [(name, self._slot[name]) for name in nl.inputs]
        self._flops = [
            (self._slot[q], self._slot[flop.d]) for q, flop in nl.flops.items()
        ]
        self._state_slots = [
            (q, self._slot[q]) for q in nl.latches
        ] + [(q, self._slot[q]) for q in nl.flops]
        self._init = {
            self._slot[q]: latch.init for q, latch in nl.latches.items()
        }
        self._init.update(
            {self._slot[q]: flop.init for q, flop in nl.flops.items()}
        )
        high_latches = [
            q for q, latch in nl.latches.items() if latch.phase == Phase.HIGH
        ]
        low_latches = [
            q for q, latch in nl.latches.items() if latch.phase == Phase.LOW
        ]
        # Before the HIGH phase, flops and (still opaque) L latches load
        # from state; before the LOW phase, flops reload and the H
        # latches -- captured at the phase boundary -- load what they
        # just latched.  Mirrors the scalar ``_phase_values`` prologue.
        self._load_high = [
            self._slot[q] for q in list(nl.flops) + low_latches
        ]
        self._load_low = [
            self._slot[q] for q in list(nl.flops) + high_latches
        ]
        self._capture_high = [self._slot[q] for q in high_latches]
        self._capture_low = [self._slot[q] for q in low_latches]

        self._n_named = len(self._slot)
        self._templates = self._decompose_gates()
        self._prog_high = self._compile(Phase.HIGH)
        self._prog_low = self._compile(Phase.LOW)
        self._nslots = self._ntemp
        self._run_high = self._codegen(self._prog_high, "_run_high")
        self._run_low = self._codegen(self._prog_low, "_run_low")

        self._v: List[int] = [0] * self._nslots
        self._k: List[int] = [0] * self._nslots
        self._ov: List[Optional[LaneOverride]] = [None] * self._nslots
        self.state: Dict[int, Planes] = {}
        self.time = 0
        #: end-of-cycle observers ``fn(time, sim)`` called by
        #: :meth:`cycle` with the index of the cycle just simulated.
        #: Empty by default (one truthiness check per cycle).
        self.observers: List[Callable[[int, "BatchSimulator"], None]] = []
        #: optional :class:`~repro.obs.profile.PhaseProfiler`: when set,
        #: the two compiled phase programs are timed individually under
        #: the phase names ``"high"`` and ``"low"``.
        self.profile = None
        self.reset()

    # -- compilation ---------------------------------------------------
    def _decompose_gates(self) -> Dict[str, Tuple[Tuple[int, ...], ...]]:
        """Binary instruction templates via the shared codegen kernel."""
        templates, self._ntemp = _kernel.decompose_gates(
            self.netlist, self._slot, self._n_named
        )
        return templates

    def _compile(self, phase: Phase) -> Tuple[Tuple[int, ...], ...]:
        """One phase as a flat topologically-sorted instruction list."""
        return _kernel.phase_program(
            self.netlist, self._slot, self._templates, phase
        )

    # -- state ---------------------------------------------------------
    def reset(self) -> None:
        """All lanes back to the declared latch/flop init values."""
        self.state = {
            slot: broadcast(init, self.lanes)
            for slot, init in self._init.items()
        }
        # In-place so observers holding the plane arrays stay attached.
        self._v[:] = [0] * self._nslots
        self._k[:] = [0] * self._nslots
        self.time = 0

    def set_overrides(self, overrides: Mapping[str, LaneOverride]) -> None:
        """Install per-lane net overrides (replacing any previous set)."""
        ov: List[Optional[LaneOverride]] = [None] * self._nslots
        for name, override in overrides.items():
            slot = self._slot.get(name)
            if slot is None:
                raise ValueError(f"unknown net {name!r}")
            ov[slot] = override
        self._ov = ov

    def _load_state(self, slots: Iterable[int]) -> None:
        v, k, ov, state = self._v, self._k, self._ov, self.state
        for slot in slots:
            sv, sk = state[slot]
            o = ov[slot]
            if o is not None:
                sv, sk = o.apply(sv, sk)
            v[slot] = sv
            k[slot] = sk

    # -- execution -----------------------------------------------------
    def _codegen(self, program: Tuple[Tuple[int, ...], ...], name: str):
        """Specialize one phase program into straight-line Python.

        Each instruction becomes direct expressions over local variables
        (``v12``/``k12`` for slot 12) -- no dispatch loop, no list
        indexing in the body.  Sources (slots read before written:
        inputs, state, opaque latches) are loaded from the plane arrays
        on entry; computed *named* slots are stored back on exit (temps
        stay local) after the per-slot override guard, mirroring the
        scalar simulator's override application at gate outputs.
        """
        body: List[str] = []
        written: set = set()
        sources: List[int] = []

        for op, out, a, b, c in program:
            for slot in _kernel.instr_reads(op, a, b, c):
                if slot not in written and slot not in sources:
                    sources.append(slot)
            body.extend(_kernel.two_plane_lines(op, out, a, b, c))
            if out < self._n_named:
                body.append(f"_o=ov[{out}]")
                body.append(
                    f"if _o is not None: v{out},k{out}=_o.apply(v{out},k{out})"
                )
            written.add(out)

        lines = [f"def {name}(v, k, ov, mask):"]
        for slot in sources:
            lines.append(f"    v{slot}=v[{slot}]; k{slot}=k[{slot}]")
        lines.extend(f"    {stmt}" for stmt in body)
        for slot in sorted(s for s in written if s < self._n_named):
            lines.append(f"    v[{slot}]=v{slot}; k[{slot}]=k{slot}")
        if len(lines) == 1:
            lines.append("    pass")
        namespace: Dict[str, object] = {}
        code = compile(
            "\n".join(lines),
            f"<batchsim:{self.netlist.name}:{name}>",
            "exec",
        )
        exec(code, namespace)
        return namespace[name]

    def cycle(self, inputs: Optional[Mapping[str, Planes]] = None) -> None:
        """Advance every lane by one clock cycle.

        ``inputs`` maps input names to canonical plane pairs (missing
        inputs are all-X, as in the scalar simulator).  Afterwards the
        plane words expose the end-of-LOW-phase values via
        :meth:`planes` / :meth:`lane_value`.
        """
        inputs = inputs or {}
        v, k, ov, mask = self._v, self._k, self._ov, self.mask
        for name, slot in self._inputs:
            iv, ik = inputs.get(name, (0, 0))
            o = ov[slot]
            if o is not None:
                iv, ik = o.apply(iv & mask, ik & mask)
            v[slot] = iv & mask
            k[slot] = ik & mask
        profile = self.profile
        self._load_state(self._load_high)
        if profile is None:
            self._run_high(v, k, ov, mask)
        else:
            t0 = perf_counter()
            self._run_high(v, k, ov, mask)
            profile.add("high", perf_counter() - t0)
        state = self.state
        for slot in self._capture_high:
            state[slot] = (v[slot], k[slot])
        self._load_state(self._load_low)
        if profile is None:
            self._run_low(v, k, ov, mask)
        else:
            t0 = perf_counter()
            self._run_low(v, k, ov, mask)
            profile.add("low", perf_counter() - t0)
        for slot in self._capture_low:
            state[slot] = (v[slot], k[slot])
        for qslot, dslot in self._flops:
            state[qslot] = (v[dslot], k[dslot])
        if self.observers:
            t = self.time
            for observer in self.observers:
                observer(t, self)
        self.time += 1

    # -- observation ---------------------------------------------------
    def slot(self, sig: str) -> int:
        """The plane-array index of ``sig`` (for hot-loop observers)."""
        return self._slot[sig]

    @property
    def value_planes(self) -> List[int]:
        """The live value-plane array, indexed by :meth:`slot`."""
        return self._v

    @property
    def known_planes(self) -> List[int]:
        """The live known-plane array, indexed by :meth:`slot`."""
        return self._k

    def planes(self, sig: str) -> Planes:
        """The end-of-cycle plane pair of one signal across all lanes."""
        slot = self._slot[sig]
        return self._v[slot], self._k[slot]

    def lane_value(self, sig: str, lane: int) -> Value:
        """One lane's ternary value of ``sig`` after the last cycle."""
        slot = self._slot[sig]
        return unpack_lane((self._v[slot], self._k[slot]), lane)

    def lane_values(
        self, lane: int, sigs: Optional[Iterable[str]] = None
    ) -> Dict[str, Value]:
        """One lane's view of the last cycle, as a scalar values dict."""
        names = list(sigs) if sigs is not None else list(self._slot)
        return {name: self.lane_value(name, lane) for name in names}

    def lane_state(self, lane: int) -> Dict[str, Value]:
        """One lane's latch/flop state, matching ``TwoPhaseSimulator.state``."""
        return {
            name: unpack_lane(self.state[slot], lane)
            for name, slot in self._state_slots
        }

    def check_lane_integrity(self) -> int:
        """Bitmask of lanes whose plane encoding is corrupt.

        The two-plane encoding has one representation invariant: a
        value bit may only be set where the known bit is (``v & ~k ==
        0``), and no bit may live above the lane mask.  The compiled
        kernels preserve both by construction, so a violation after a
        cycle means the planes were corrupted from outside (a buggy
        observer poking the live arrays, a bad override mask, cosmic
        unluck) -- exactly the condition the graceful-degradation layer
        quarantines.  Returns 0 when every lane is healthy; a plane
        bit *above* the mask cannot be attributed to one lane, so it
        taints all of them (returns the full mask).
        """
        bad = 0
        mask = self.mask
        v, k = self._v, self._k
        for slot in range(self._n_named):
            if (v[slot] | k[slot]) & ~mask:
                return mask
            bad |= v[slot] & ~k[slot] & mask
        for vp, kp in self.state.values():
            if (vp | kp) & ~mask:
                return mask
            bad |= vp & ~kp & mask
        return bad
