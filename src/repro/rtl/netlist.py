"""Netlists of gates, transparent latches and flip-flops.

A :class:`Netlist` is a named collection of:

* **primary inputs** -- driven by the environment each cycle;
* **gates** -- combinational cells (``AND OR NOT NAND NOR XOR MUX BUF
  CONST0 CONST1``), one per driven signal;
* **latches** -- level-sensitive transparent latches with an active
  phase (``Phase.HIGH`` or ``Phase.LOW``) matching the H/L labels of
  Fig. 3 of the paper;
* **flip-flops** -- edge-triggered storage (used by the eager fork and
  the early-evaluation join for pending anti-tokens).

Every signal has exactly one driver.  The builder API
(:meth:`Netlist.AND`, :meth:`Netlist.OR`, ...) creates gates with fresh
signal names so controller constructors read like structural Verilog.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.rtl.logic import Value, X


class Phase(enum.Enum):
    """Active phase of a transparent latch."""

    HIGH = "H"
    LOW = "L"


GATE_OPS = {
    "AND",
    "OR",
    "NOT",
    "NAND",
    "NOR",
    "XOR",
    "MUX",  # MUX(sel, when1, when0)
    "BUF",
    "CONST0",
    "CONST1",
}


@dataclass(frozen=True)
class Gate:
    """A combinational cell driving signal ``out``."""

    out: str
    op: str
    ins: Tuple[str, ...]

    def __post_init__(self) -> None:
        if self.op not in GATE_OPS:
            raise ValueError(f"unknown gate op {self.op!r}")
        if self.op in ("NOT", "BUF") and len(self.ins) != 1:
            raise ValueError(f"{self.op} takes exactly one input")
        if self.op == "MUX" and len(self.ins) != 3:
            raise ValueError("MUX takes (sel, when1, when0)")
        if self.op.startswith("CONST") and self.ins:
            raise ValueError("constants take no inputs")


@dataclass(frozen=True)
class Latch:
    """A transparent latch: ``q`` follows ``d`` while its phase is active."""

    q: str
    d: str
    phase: Phase
    init: Value = 0


@dataclass(frozen=True)
class FlipFlop:
    """An edge-triggered flip-flop: ``q`` takes ``d`` at each cycle start."""

    q: str
    d: str
    init: Value = 0


class Netlist:
    """A single-driver netlist with a structural builder API."""

    def __init__(self, name: str = "netlist") -> None:
        self.name = name
        self.inputs: List[str] = []
        self.outputs: List[str] = []
        self.gates: Dict[str, Gate] = {}
        self.latches: Dict[str, Latch] = {}
        self.flops: Dict[str, FlipFlop] = {}
        self._drivers: Set[str] = set()
        self._fresh = 0

    # ------------------------------------------------------------------
    # Naming helpers
    # ------------------------------------------------------------------
    def fresh(self, hint: str = "n") -> str:
        """Return a fresh signal name with the given hint."""
        self._fresh += 1
        return f"{hint}${self._fresh}"

    def _claim(self, sig: str) -> None:
        if sig in self._drivers:
            raise ValueError(f"signal {sig!r} already has a driver")
        self._drivers.add(sig)

    # ------------------------------------------------------------------
    # Structural construction
    # ------------------------------------------------------------------
    def add_input(self, name: str) -> str:
        """Declare a primary input."""
        self._claim(name)
        self.inputs.append(name)
        return name

    def add_output(self, name: str) -> str:
        """Mark an existing signal as a primary output (observable)."""
        if name not in self.outputs:
            self.outputs.append(name)
        return name

    def add_gate(self, op: str, ins: Sequence[str], out: Optional[str] = None) -> str:
        """Add a gate; returns the name of the driven signal."""
        out = out if out is not None else self.fresh(op.lower())
        self._claim(out)
        self.gates[out] = Gate(out, op, tuple(ins))
        return out

    def add_latch(
        self, d: str, phase: Phase, q: Optional[str] = None, init: Value = 0
    ) -> str:
        """Add a transparent latch capturing ``d``; returns ``q``."""
        q = q if q is not None else self.fresh("lat")
        self._claim(q)
        self.latches[q] = Latch(q, d, phase, init)
        return q

    def add_flop(self, d: str, q: Optional[str] = None, init: Value = 0) -> str:
        """Add a flip-flop capturing ``d``; returns ``q``."""
        q = q if q is not None else self.fresh("ff")
        self._claim(q)
        self.flops[q] = FlipFlop(q, d, init)
        return q

    # Convenience cell builders ----------------------------------------
    def AND(self, *ins: str, out: Optional[str] = None) -> str:
        return self.add_gate("AND", ins, out)

    def OR(self, *ins: str, out: Optional[str] = None) -> str:
        return self.add_gate("OR", ins, out)

    def NOT(self, a: str, out: Optional[str] = None) -> str:
        return self.add_gate("NOT", (a,), out)

    def NAND(self, *ins: str, out: Optional[str] = None) -> str:
        return self.add_gate("NAND", ins, out)

    def NOR(self, *ins: str, out: Optional[str] = None) -> str:
        return self.add_gate("NOR", ins, out)

    def XOR(self, a: str, b: str, out: Optional[str] = None) -> str:
        return self.add_gate("XOR", (a, b), out)

    def MUX(self, sel: str, when1: str, when0: str, out: Optional[str] = None) -> str:
        return self.add_gate("MUX", (sel, when1, when0), out)

    def BUF(self, a: str, out: Optional[str] = None) -> str:
        return self.add_gate("BUF", (a,), out)

    def const0(self, out: Optional[str] = None) -> str:
        return self.add_gate("CONST0", (), out)

    def const1(self, out: Optional[str] = None) -> str:
        return self.add_gate("CONST1", (), out)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def signals(self) -> Set[str]:
        """Every driven signal plus the primary inputs."""
        return (
            set(self.inputs)
            | set(self.gates)
            | set(self.latches)
            | set(self.flops)
        )

    def state_signals(self) -> List[str]:
        """Signals holding state across evaluations (latches + flops)."""
        return list(self.latches) + list(self.flops)

    def driver_of(self, sig: str) -> Optional[object]:
        """The Gate/Latch/FlipFlop driving ``sig``, or None for inputs."""
        if sig in self.gates:
            return self.gates[sig]
        if sig in self.latches:
            return self.latches[sig]
        if sig in self.flops:
            return self.flops[sig]
        return None

    def fanin(self, sig: str) -> Tuple[str, ...]:
        """Immediate fan-in signals of ``sig`` (empty for inputs/consts)."""
        drv = self.driver_of(sig)
        if isinstance(drv, Gate):
            return drv.ins
        if isinstance(drv, Latch):
            return (drv.d,)
        if isinstance(drv, FlipFlop):
            return (drv.d,)
        return ()

    def undriven(self) -> Set[str]:
        """Signals referenced as fan-in but never driven (dangling)."""
        referenced: Set[str] = set()
        for g in self.gates.values():
            referenced.update(g.ins)
        for l in self.latches.values():
            referenced.add(l.d)
        for f in self.flops.values():
            referenced.add(f.d)
        return referenced - self.signals()

    def validate(self) -> None:
        """Raise ``ValueError`` if any referenced signal has no driver."""
        dangling = self.undriven()
        if dangling:
            raise ValueError(f"undriven signals: {sorted(dangling)}")

    def stats(self) -> Dict[str, int]:
        """Cell-count summary."""
        return {
            "inputs": len(self.inputs),
            "gates": len(self.gates),
            "latches": len(self.latches),
            "flops": len(self.flops),
        }

    def merge(self, other: "Netlist", prefix: str = "") -> Dict[str, str]:
        """Import every cell of ``other``, optionally prefixing names.

        Returns the renaming map applied to ``other``'s signals.  The
        caller is responsible for connecting ``other``'s former inputs
        (they become undriven references here unless also renamed onto
        existing signals).
        """
        rename = {s: (prefix + s if prefix else s) for s in other.signals()}
        for g in other.gates.values():
            self.add_gate(g.op, tuple(rename[i] for i in g.ins), rename[g.out])
        for l in other.latches.values():
            self.add_latch(rename[l.d], l.phase, rename[l.q], l.init)
        for f in other.flops.values():
            self.add_flop(rename[f.d], rename[f.q], f.init)
        return rename

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"Netlist({self.name!r}, gates={s['gates']}, "
            f"latches={s['latches']}, flops={s['flops']})"
        )
