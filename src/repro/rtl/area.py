"""Area estimation: constant propagation, dead-logic pruning, literals.

The paper reports the control-layer cost as *literals in factored form*
plus latch and flip-flop counts after logic synthesis with SIS.  This
module regenerates those three numbers from our controller netlists:

* :func:`constant_propagate` -- replaces signals bound to constants
  (e.g. the ``V−``/``S−`` wires of channels that never see anti-tokens)
  and simplifies gates until a fixed point, mirroring the paper's
  "simplification by simple logic synthesis techniques" that removes
  the negative part of channels such as ``W -> S``;
* :func:`prune_dead` -- removes cells outside the transitive fan-in of
  the observable outputs;
* :func:`count_area` -- counts literals in factored form (inverters and
  buffers are free, an n-input simple gate costs n literals, XOR costs
  4, MUX costs 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Set, Tuple

from repro.rtl.logic import Value, X
from repro.rtl.netlist import FlipFlop, Gate, Latch, Netlist


@dataclass(frozen=True)
class AreaReport:
    """Control-layer cost: the three Table 1 area columns."""

    literals: int
    latches: int
    flops: int
    gates: int

    def __str__(self) -> str:
        return f"{self.literals} lit / {self.latches} lat / {self.flops} ff"


_LITERAL_COST = {
    "AND": None,  # fan-in
    "OR": None,
    "NAND": None,
    "NOR": None,
    "NOT": 0,
    "BUF": 0,
    "CONST0": 0,
    "CONST1": 0,
    "XOR": 4,
    "MUX": 4,
}


def count_area(netlist: Netlist) -> AreaReport:
    """Count factored-form literals, latches and flip-flops."""
    literals = 0
    gates = 0
    for gate in netlist.gates.values():
        cost = _LITERAL_COST[gate.op]
        if cost is None:
            cost = len(gate.ins)
        literals += cost
        if gate.op not in ("BUF", "CONST0", "CONST1"):
            gates += 1
    return AreaReport(
        literals=literals,
        latches=len(netlist.latches),
        flops=len(netlist.flops),
        gates=gates,
    )


def _simplify_gate(
    op: str, ins: Tuple[str, ...], const: Mapping[str, int]
) -> Tuple[str, Tuple[str, ...], Optional[int], Optional[str]]:
    """Simplify one gate given known-constant inputs.

    Returns ``(op, ins, const_value, alias)``: if ``const_value`` is not
    None the gate output is that constant; if ``alias`` is not None the
    output equals that signal; otherwise the (possibly reduced) gate
    remains.
    """
    vals = [const.get(i) for i in ins]

    if op in ("AND", "NAND"):
        if any(v == 0 for v in vals):
            return op, ins, (0 if op == "AND" else 1), None
        kept = tuple(i for i, v in zip(ins, vals) if v != 1)
        if not kept:
            return op, ins, (1 if op == "AND" else 0), None
        if len(kept) == 1:
            return ("BUF" if op == "AND" else "NOT"), kept, None, (
                kept[0] if op == "AND" else None
            )
        return op, kept, None, None

    if op in ("OR", "NOR"):
        if any(v == 1 for v in vals):
            return op, ins, (1 if op == "OR" else 0), None
        kept = tuple(i for i, v in zip(ins, vals) if v != 0)
        if not kept:
            return op, ins, (0 if op == "OR" else 1), None
        if len(kept) == 1:
            return ("BUF" if op == "OR" else "NOT"), kept, None, (
                kept[0] if op == "OR" else None
            )
        return op, kept, None, None

    if op == "NOT":
        if vals[0] is not None:
            return op, ins, 1 - vals[0], None
        return op, ins, None, None

    if op == "BUF":
        if vals[0] is not None:
            return op, ins, vals[0], None
        return op, ins, None, ins[0]

    if op == "XOR":
        a, b = vals
        if a is not None and b is not None:
            return op, ins, a ^ b, None
        if a == 0:
            return "BUF", (ins[1],), None, ins[1]
        if b == 0:
            return "BUF", (ins[0],), None, ins[0]
        if a == 1:
            return "NOT", (ins[1],), None, None
        if b == 1:
            return "NOT", (ins[0],), None, None
        return op, ins, None, None

    if op == "MUX":
        sel, w1, w0 = vals
        if sel == 1:
            return "BUF", (ins[1],), None, ins[1]
        if sel == 0:
            return "BUF", (ins[2],), None, ins[2]
        if ins[1] == ins[2]:
            return "BUF", (ins[1],), None, ins[1]
        if w1 is not None and w0 is not None and w1 == w0:
            return op, ins, w1, None
        return op, ins, None, None

    if op == "CONST0":
        return op, ins, 0, None
    if op == "CONST1":
        return op, ins, 1, None
    raise AssertionError(f"unhandled op {op}")


def _combinational_constants(
    netlist: Netlist, const: Dict[str, int]
) -> Dict[str, int]:
    """Extend ``const`` with every gate output it forces (pure sweep)."""
    result = dict(const)
    changed = True
    while changed:
        changed = False
        for out, gate in netlist.gates.items():
            if out in result:
                continue
            _, _, cval, alias_to = _simplify_gate(gate.op, gate.ins, result)
            if cval is None and alias_to is not None and alias_to in result:
                cval = result[alias_to]
            if cval is not None:
                result[out] = cval
                changed = True
    return result


def sequential_constants(
    netlist: Netlist, bindings: Optional[Mapping[str, int]] = None
) -> Dict[str, int]:
    """Sequential constant analysis (greatest fixed point).

    Every latch/flop is assumed stuck at its init value; assumptions are
    withdrawn whenever the combinational sweep cannot confirm that the
    element's data input equals its init under the surviving
    assumptions.  What remains is an inductive invariant: those state
    bits provably never change.  This is what removes the whole
    anti-token network when no controller can ever emit a ``V−`` -- the
    paper's "simplification by simple logic synthesis techniques".
    """
    candidates: Dict[str, int] = {}
    for q, latch in netlist.latches.items():
        if latch.init is not X:
            candidates[q] = latch.init
    for q, flop in netlist.flops.items():
        if flop.init is not X:
            candidates[q] = flop.init

    while True:
        assumed = dict(bindings or {})
        assumed.update(candidates)
        known = _combinational_constants(netlist, assumed)
        drop = []
        for q in candidates:
            d = netlist.latches[q].d if q in netlist.latches else netlist.flops[q].d
            if known.get(d) != candidates[q]:
                drop.append(q)
        if not drop:
            return known
        for q in drop:
            del candidates[q]


def constant_propagate(
    netlist: Netlist, bindings: Optional[Mapping[str, int]] = None
) -> Netlist:
    """Return a simplified copy with ``bindings`` tied to constants.

    ``bindings`` maps primary-input names to 0/1.  Sequential constants
    (state bits provably stuck at their init value, see
    :func:`sequential_constants`) are computed first; then constants
    are swept through gates, buffers are collapsed and surviving cells
    are rebuilt.  Iterates to a fixed point.
    """
    const: Dict[str, int] = dict(bindings or {})
    const.update(sequential_constants(netlist, bindings))
    alias: Dict[str, str] = {}

    def resolve(sig: str) -> str:
        seen = []
        while sig in alias:
            seen.append(sig)
            sig = alias[sig]
        for s in seen:
            alias[s] = sig
        return sig

    gate_defs: Dict[str, Tuple[str, Tuple[str, ...]]] = {
        out: (g.op, g.ins) for out, g in netlist.gates.items()
    }

    changed = True
    while changed:
        changed = False
        for out in list(gate_defs):
            if out in const:
                del gate_defs[out]
                changed = True
                continue
            op, ins = gate_defs[out]
            new_ins = tuple(resolve(i) for i in ins)
            new_op, new_ins, cval, alias_to = _simplify_gate(op, new_ins, const)
            if cval is not None:
                const[out] = cval
                del gate_defs[out]
                changed = True
            elif alias_to is not None:
                alias[out] = resolve(alias_to)
                del gate_defs[out]
                changed = True
            elif (new_op, new_ins) != (op, ins):
                gate_defs[out] = (new_op, new_ins)
                changed = True
        for q, latch in netlist.latches.items():
            if q in const:
                continue
            d = resolve(latch.d)
            if const.get(d) is not None and const[d] == latch.init:
                const[q] = latch.init
                changed = True
        for q, flop in netlist.flops.items():
            if q in const:
                continue
            d = resolve(flop.d)
            if const.get(d) is not None and const[d] == flop.init:
                const[q] = flop.init
                changed = True

    # Rebuild.
    out_nl = Netlist(netlist.name + "+cp")
    for sig in netlist.inputs:
        if sig not in const:
            out_nl.add_input(sig)
    const_cache: Dict[int, str] = {}

    def materialise(sig: str) -> str:
        sig = resolve(sig)
        if sig in const:
            v = const[sig]
            if v not in const_cache:
                name = out_nl.fresh(f"const{v}")
                out_nl.add_gate("CONST1" if v else "CONST0", (), name)
                const_cache[v] = name
            return const_cache[v]
        return sig

    for out, (op, ins) in gate_defs.items():
        out_nl.add_gate(op, tuple(materialise(i) for i in ins), out)
    for q, latch in netlist.latches.items():
        if resolve(q) == q and q not in const:
            out_nl.add_latch(materialise(latch.d), latch.phase, q, latch.init)
    for q, flop in netlist.flops.items():
        if resolve(q) == q and q not in const:
            out_nl.add_flop(materialise(flop.d), q, flop.init)
    for sig in netlist.outputs:
        out_nl.add_output(materialise(sig))
    return out_nl


def prune_dead(netlist: Netlist, keep: Optional[Iterable[str]] = None) -> Netlist:
    """Remove every cell outside the transitive fan-in of ``keep``.

    ``keep`` defaults to the netlist's declared outputs.  Latches and
    flops are state but still pruned when nothing observable depends on
    them -- matching what logic synthesis does to unused control state.
    """
    roots = list(keep) if keep is not None else list(netlist.outputs)
    live: Set[str] = set()
    stack = [r for r in roots]
    while stack:
        sig = stack.pop()
        if sig in live:
            continue
        live.add(sig)
        stack.extend(netlist.fanin(sig))

    out_nl = Netlist(netlist.name + "+prune")
    for sig in netlist.inputs:
        if sig in live:
            out_nl.add_input(sig)
    for out, gate in netlist.gates.items():
        if out in live:
            out_nl.add_gate(gate.op, gate.ins, out)
    for q, latch in netlist.latches.items():
        if q in live:
            out_nl.add_latch(latch.d, latch.phase, q, latch.init)
    for q, flop in netlist.flops.items():
        if q in live:
            out_nl.add_flop(flop.d, q, flop.init)
    for sig in netlist.outputs:
        if sig in live:
            out_nl.add_output(sig)
    return out_nl


def synthesize_area(
    netlist: Netlist, bindings: Optional[Mapping[str, int]] = None
) -> AreaReport:
    """Constant-propagate, prune and count: the full area pipeline."""
    simplified = constant_propagate(netlist, bindings)
    pruned = prune_dead(simplified)
    return count_area(pruned)
