"""Two-phase cycle simulation of netlists with X-propagation.

The paper's controllers are latch-based (Fig. 3): ``H`` latches are
transparent while the clock is high, ``L`` latches while it is low.  A
clock cycle is therefore simulated as two phases:

1. **HIGH** phase -- ``H`` latches are transparent (their output follows
   their input combinationally), ``L`` latches hold; at the end of the
   phase the ``H`` latches capture.
2. **LOW** phase -- symmetric; at the end of the phase the ``L`` latches
   capture and flip-flops capture their ``d`` (a flip-flop triggers on
   the next rising edge, i.e. the upcoming cycle boundary).

Within a phase, combinational values are computed as the least fixed
point of the ternary (0/1/X) gate functions starting from all-X.  This
is the classical ternary simulation: it is exact for acyclic logic and
conservatively reports ``X`` for truly unresolvable combinational
cycles.  The paper takes care to place the token-cancellation gates at
EHB boundaries precisely so that no such cycles arise; the simulator
verifies this claim (`strict_x=True` raises on unresolved signals).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Optional, Set, Tuple, Union

from repro.rtl.logic import Value, X, is_known, land, lmux, lnot, lor, lxor
from repro.rtl.netlist import FlipFlop, Gate, Latch, Netlist, Phase
from repro.rtl.toposort import CombinationalCycleError, find_combinational_cycle

__all__ = [
    "CombinationalCycleError",
    "Override",
    "State",
    "TwoPhaseSimulator",
    "Values",
]

State = Dict[str, Value]
Values = Dict[str, Value]

#: A net override: either a constant forced value, or a function of the
#: fault-free value (e.g. ``lnot`` for a bit-flip).
Override = Union[int, Callable[[Value], Value]]


def _apply_override(override: Override, value: Value) -> Value:
    return override(value) if callable(override) else override


def _eval_gate(gate: Gate, vals: Mapping[str, Value]) -> Value:
    ins = [vals.get(i, X) for i in gate.ins]
    op = gate.op
    if op == "AND":
        return land(*ins)
    if op == "OR":
        return lor(*ins)
    if op == "NOT":
        return lnot(ins[0])
    if op == "NAND":
        return lnot(land(*ins))
    if op == "NOR":
        return lnot(lor(*ins))
    if op == "XOR":
        return lxor(ins[0], ins[1])
    if op == "MUX":
        return lmux(ins[0], ins[1], ins[2])
    if op == "BUF":
        return ins[0]
    if op == "CONST0":
        return 0
    if op == "CONST1":
        return 1
    raise AssertionError(f"unhandled op {op}")


class TwoPhaseSimulator:
    """Cycle simulator for a :class:`Netlist` with H/L latch phases.

    The simulator keeps the latch/flop state between calls to
    :meth:`cycle`; :meth:`step_function` exposes the same semantics as a
    pure function of (state, inputs), which the model checker in
    :mod:`repro.verif` uses to build Kripke structures.
    """

    def __init__(
        self,
        netlist: Netlist,
        strict_x: bool = False,
        overrides: Optional[Mapping[str, Override]] = None,
    ) -> None:
        netlist.validate()
        self.netlist = netlist
        self.strict_x = strict_x
        #: Net override hooks (fault injection): while a signal name is
        #: present here its *visible* value is forced everywhere it is
        #: read -- gate evaluation, latch transparency and state loads.
        #: A transparent latch stores its (forced) output node, so an
        #: override on a latch corrupts the stored bit as well; a
        #: flip-flop keeps sampling its true ``d`` and recovers once the
        #: override is removed.  The mapping may be mutated between
        #: cycles; :mod:`repro.faults` drives it per injection schedule.
        self.overrides: Dict[str, Override] = dict(overrides or {})
        self._order = self._schedule()
        self.state: State = self.initial_state()
        self.values: Values = {}
        self.time = 0
        #: end-of-cycle observers ``fn(time, values)`` called by
        #: :meth:`cycle` with the index of the cycle just simulated and
        #: its settled values.  Empty by default (one truthiness check
        #: per cycle); :mod:`repro.obs` attaches trace recorders here.
        self.observers: List[Callable[[int, Values], None]] = []

    # ------------------------------------------------------------------
    def initial_state(self) -> State:
        """Reset state: every latch/flop at its declared init value."""
        state: State = {}
        for q, latch in self.netlist.latches.items():
            state[q] = latch.init
        for q, flop in self.netlist.flops.items():
            state[q] = flop.init
        return state

    def reset(self) -> None:
        """Restore the reset state and clear the clock counter."""
        self.state = self.initial_state()
        self.values = {}
        self.time = 0

    def _schedule(self) -> List[str]:
        """A quasi-topological gate order for fast fixed-point passes.

        Orders gate outputs by depth-first post-order over fan-in edges,
        treating latches and flops as cuts.  For acyclic combinational
        logic one pass over this order reaches the fixed point; cyclic
        logic simply needs extra passes.
        """
        nl = self.netlist
        order: List[str] = []
        seen: Set[str] = set()
        # Iterative DFS to avoid recursion limits on deep netlists.
        for root in nl.gates:
            if root in seen:
                continue
            stack: List[Tuple[str, int]] = [(root, 0)]
            path: Set[str] = set()
            while stack:
                sig, idx = stack.pop()
                if idx == 0:
                    if sig in seen or sig not in nl.gates:
                        continue
                    path.add(sig)
                fanin = nl.gates[sig].ins
                if idx < len(fanin):
                    stack.append((sig, idx + 1))
                    child = fanin[idx]
                    if child in nl.gates and child not in seen and child not in path:
                        stack.append((child, 0))
                else:
                    path.discard(sig)
                    if sig not in seen:
                        seen.add(sig)
                        order.append(sig)
        return order

    # ------------------------------------------------------------------
    def _phase_values(
        self,
        inputs: Mapping[str, Value],
        state: Mapping[str, Value],
        phase: Phase,
    ) -> Values:
        """Least ternary fixed point of one clock phase."""
        nl = self.netlist
        ov = self.overrides
        vals: Values = {}
        for sig in nl.inputs:
            v = inputs.get(sig, X)
            if ov and sig in ov:
                v = _apply_override(ov[sig], v)
            vals[sig] = v
        for q in nl.flops:
            v = state[q]
            if ov and q in ov:
                v = _apply_override(ov[q], v)
            vals[q] = v
        transparent: List[Latch] = []
        for q, latch in nl.latches.items():
            if latch.phase == phase:
                transparent.append(latch)
                vals[q] = X
            else:
                v = state[q]
                if ov and q in ov:
                    v = _apply_override(ov[q], v)
                vals[q] = v
        for out in self._order:
            vals[out] = X

        max_passes = len(self._order) + len(transparent) + 2
        for _ in range(max_passes):
            changed = False
            for out in self._order:
                new = _eval_gate(nl.gates[out], vals)
                if ov and out in ov:
                    new = _apply_override(ov[out], new)
                if new is not vals[out] and new != vals[out]:
                    vals[out] = new
                    changed = True
            for latch in transparent:
                new = vals.get(latch.d, X)
                if ov and latch.q in ov:
                    new = _apply_override(ov[latch.q], new)
                if new is not vals[latch.q] and new != vals[latch.q]:
                    vals[latch.q] = new
                    changed = True
            if not changed:
                break
        return vals

    def step_function(
        self, state: Mapping[str, Value], inputs: Mapping[str, Value]
    ) -> Tuple[Values, State]:
        """One full clock cycle as a pure function.

        Args:
            state: latch/flop values at the cycle start.
            inputs: primary input values, stable for the whole cycle.

        Returns:
            ``(values, next_state)`` where ``values`` are the signal
            values observed at the end of the LOW phase (the cycle
            boundary) and ``next_state`` the captured latch/flop values.
        """
        nl = self.netlist
        high_vals = self._phase_values(inputs, state, Phase.HIGH)
        mid_state: State = dict(state)
        for q, latch in nl.latches.items():
            if latch.phase == Phase.HIGH:
                mid_state[q] = high_vals[q]
        low_vals = self._phase_values(inputs, mid_state, Phase.LOW)
        next_state: State = dict(mid_state)
        for q, latch in nl.latches.items():
            if latch.phase == Phase.LOW:
                next_state[q] = low_vals[q]
        for q, flop in nl.flops.items():
            next_state[q] = low_vals.get(flop.d, X)
        if self.strict_x:
            unresolved = [
                s
                for s, v in low_vals.items()
                if v is X and all(is_known(inputs.get(i, X)) for i in nl.inputs)
                and all(is_known(v2) for v2 in state.values())
            ]
            if unresolved:
                for phase in (Phase.LOW, Phase.HIGH):
                    cycle = find_combinational_cycle(nl, phase)
                    if cycle is not None:
                        raise CombinationalCycleError.from_cycle(cycle)
                raise CombinationalCycleError(
                    f"unresolved signals after LOW phase: {sorted(unresolved)[:8]}"
                )
        return low_vals, next_state

    def cycle(self, inputs: Optional[Mapping[str, Value]] = None) -> Values:
        """Advance the stateful simulation by one clock cycle."""
        values, next_state = self.step_function(self.state, inputs or {})
        self.state = next_state
        self.values = values
        if self.observers:
            for observer in self.observers:
                observer(self.time, values)
        self.time += 1
        return values

    def value(self, sig: str) -> Value:
        """Value of ``sig`` at the end of the last simulated cycle."""
        return self.values[sig]
