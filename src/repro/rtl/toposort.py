"""Per-phase topological orders and combinational-cycle extraction.

Within one clock phase the combinational surface of a netlist consists
of its gates plus the latches that are *transparent* in that phase
(their output follows their input like a buffer).  Both simulators need
this graph:

* :class:`~repro.rtl.batchsim.BatchSimulator` compiles each phase into
  a flat instruction list and therefore *requires* the graph to be
  acyclic -- :func:`topo_order` raises :class:`CombinationalCycleError`
  naming the full cycle path otherwise;
* :class:`~repro.rtl.simulator.TwoPhaseSimulator` tolerates cycles via
  ternary fixed points, but in ``strict_x`` mode it uses
  :func:`find_combinational_cycle` to report the same full cycle path
  instead of a bare list of unresolved nets.

The core walk is :func:`order_or_cycle`, a plain dependency-graph
routine with no netlist knowledge; the resilience watchdogs reuse it to
find the cycle of mutually-blocked Stop wires in a stalled network.

Cycle paths are canonical (rotated so the lexicographically smallest
signal comes first, listed in signal-flow order), so the two simulators
produce byte-identical diagnostics for the same netlist.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.rtl.netlist import Netlist, Phase


class CombinationalCycleError(RuntimeError):
    """Combinational logic that cannot settle within one clock phase.

    Raised structurally (a cycle in a phase's gate graph, with the
    offending path in :attr:`cycle`) or, by the scalar simulator's
    strict mode, when the ternary fixed point leaves signals unresolved.
    """

    def __init__(self, message: str, cycle: Optional[List[str]] = None) -> None:
        super().__init__(message)
        #: The signals along the cycle in flow order, or None when the
        #: error reports unresolved signals without a structural cycle.
        self.cycle: Optional[List[str]] = list(cycle) if cycle else None

    @classmethod
    def from_cycle(cls, cycle: List[str]) -> "CombinationalCycleError":
        """The canonical error for one structural cycle path.

        Delegates the diagnostic to the LNT005 lint rule (the import is
        deferred: the lint package sits above the rtl layer), so the
        scalar engine, the batch engine and ``repro lint`` produce the
        message from exactly one place.
        """
        from repro.lint.netlist_rules import combinational_cycle_finding

        return cls.from_finding(combinational_cycle_finding(cycle))

    @classmethod
    def from_finding(cls, finding) -> "CombinationalCycleError":
        """The error for one LNT005 lint finding (duck-typed: anything
        with ``message`` and ``path`` attributes)."""
        return cls(finding.message, cycle=list(finding.path))


def canonical_cycle(cycle: List[str]) -> List[str]:
    """Rotate a cycle so the smallest signal name comes first."""
    pivot = cycle.index(min(cycle))
    return cycle[pivot:] + cycle[:pivot]


def canonical_nodes(
    nodes: Dict[str, Tuple[str, ...]],
) -> Dict[str, Tuple[str, ...]]:
    """The same dependency graph with sorted keys and sorted fan-in.

    :func:`order_or_cycle` walks roots and dependencies in the order
    given, so *which* cycle it extracts from a multi-cycle graph depends
    on dict insertion order.  Hunting over the canonicalised graph makes
    the reported cycle a function of the graph alone -- LNT005 findings
    and :class:`CombinationalCycleError` diagnostics stay byte-stable
    across construction-order changes.
    """
    return {sig: tuple(sorted(nodes[sig])) for sig in sorted(nodes)}


def phase_nodes(netlist: Netlist, phase: Phase) -> Dict[str, Tuple[str, ...]]:
    """The combinational nodes of one phase and their raw fan-in.

    Nodes are gate outputs plus the outputs of latches transparent in
    ``phase``.  Fan-in tuples are unfiltered -- entries that are not
    themselves nodes (primary inputs, flops, opaque latches) are the
    phase's sources.
    """
    nodes: Dict[str, Tuple[str, ...]] = {}
    for out, gate in netlist.gates.items():
        nodes[out] = gate.ins
    for q, latch in netlist.latches.items():
        if latch.phase == phase:
            nodes[q] = (latch.d,)
    return nodes


def order_or_cycle(
    nodes: Dict[str, Tuple[str, ...]],
) -> Tuple[List[str], Optional[List[str]]]:
    """Topologically sort a dependency graph, or extract one cycle.

    ``nodes`` maps each node to its dependencies; dependency entries
    that are not themselves nodes are sources and are skipped.  Returns
    ``(order, None)`` with every node after all of its in-graph
    dependencies when the graph is acyclic, or ``(partial_order,
    cycle)`` where ``cycle`` lists the nodes of one dependency cycle in
    *flow* order (each node feeds the next, and the last feeds the
    first).
    """
    order: List[str] = []
    seen: set = set()
    path_set: set = set()
    path_list: List[str] = []
    for root in nodes:
        if root in seen:
            continue
        stack: List[Tuple[str, int]] = [(root, 0)]
        while stack:
            sig, idx = stack.pop()
            if idx == 0:
                path_set.add(sig)
                path_list.append(sig)
            ins = nodes[sig]
            while idx < len(ins) and (ins[idx] not in nodes or ins[idx] in seen):
                idx += 1
            if idx < len(ins):
                child = ins[idx]
                if child in path_set:
                    # DFS descends along dependencies, so the chain from
                    # ``child`` down to ``sig`` reads against the flow
                    # direction; reverse it to report flow order.
                    chain = path_list[path_list.index(child):]
                    return order, chain[::-1]
                stack.append((sig, idx + 1))
                stack.append((child, 0))
            else:
                seen.add(sig)
                order.append(sig)
                path_set.discard(sig)
                path_list.pop()
    return order, None


def topo_order(netlist: Netlist, phase: Phase) -> List[str]:
    """Topological order of one phase's combinational nodes.

    The returned list contains gate outputs and transparent-latch
    outputs such that every node appears after all of its in-phase
    fan-in.  Raises :class:`CombinationalCycleError` (with the full
    path) when the phase has a combinational cycle.
    """
    nodes = phase_nodes(netlist, phase)
    order, cycle = order_or_cycle(nodes)
    if cycle is not None:
        # Re-hunt over the canonical graph so the reported cycle does
        # not depend on netlist construction order.  Only the error path
        # pays for this; the happy-path order is untouched (the compiled
        # simulator's instruction stream keys on it).
        _, cycle = order_or_cycle(canonical_nodes(nodes))
        raise CombinationalCycleError.from_cycle(cycle)
    return order


def find_combinational_cycle(
    netlist: Netlist, phase: Phase
) -> Optional[List[str]]:
    """The canonical cycle path of one phase, or None when acyclic."""
    try:
        topo_order(netlist, phase)
    except CombinationalCycleError as exc:
        return exc.cycle
    return None
