"""Three-valued logic (0, 1, X).

The unknown value ``X`` is used (a) to initialise state before reset,
(b) to compute ternary fixed points of combinational loops, and (c) to
model don't-care environment inputs.  Values are plain Python objects:
``0``, ``1`` and the module-level constant :data:`X`.

The operations below are the standard monotone extensions of boolean
operators: a result is known whenever it is determined by the known
operands (e.g. ``land(0, X) == 0``).
"""

from __future__ import annotations

from typing import Iterable, Union


class _Unknown:
    """Singleton unknown value.  Falsy, prints as ``X``."""

    _instance: "_Unknown | None" = None

    def __new__(cls) -> "_Unknown":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "X"

    def __bool__(self) -> bool:
        raise TypeError("X has no truth value; use is_known()")


X = _Unknown()
Value = Union[int, _Unknown]

# Canonical truth values accepted everywhere.
_TRUE = 1
_FALSE = 0


def is_known(v: Value) -> bool:
    """True for 0/1, False for X."""
    return v is not X


def _norm(v: Value) -> Value:
    """Normalise truthy/falsy ints to canonical 0/1; pass X through."""
    if v is X:
        return X
    return _TRUE if v else _FALSE


def land(*vs: Value) -> Value:
    """Ternary AND: 0 dominates, all-1 gives 1, otherwise X."""
    saw_x = False
    for v in vs:
        v = _norm(v)
        if v == 0:
            return 0
        if v is X:
            saw_x = True
    return X if saw_x else 1


def lor(*vs: Value) -> Value:
    """Ternary OR: 1 dominates, all-0 gives 0, otherwise X."""
    saw_x = False
    for v in vs:
        v = _norm(v)
        if v == 1:
            return 1
        if v is X:
            saw_x = True
    return X if saw_x else 0


def lnot(v: Value) -> Value:
    """Ternary NOT."""
    v = _norm(v)
    if v is X:
        return X
    return 1 - v


def lxor(a: Value, b: Value) -> Value:
    """Ternary XOR: unknown if either operand is unknown."""
    a, b = _norm(a), _norm(b)
    if a is X or b is X:
        return X
    return a ^ b


def lmux(sel: Value, when1: Value, when0: Value) -> Value:
    """Ternary 2:1 multiplexer with X-reduction.

    If the select is unknown but both data inputs agree on a known
    value, the output is that value.
    """
    sel, when1, when0 = _norm(sel), _norm(when1), _norm(when0)
    if sel is X:
        if when1 is not X and when1 == when0:
            return when1
        return X
    return when1 if sel == 1 else when0


def AND(vs: Iterable[Value]) -> Value:
    """Variadic ternary AND over an iterable."""
    return land(*vs)


def OR(vs: Iterable[Value]) -> Value:
    """Variadic ternary OR over an iterable."""
    return lor(*vs)


def NOT(v: Value) -> Value:
    """Alias of :func:`lnot`."""
    return lnot(v)
