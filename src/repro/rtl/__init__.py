"""Gate/latch/flip-flop netlist kernel.

This package is the substrate replacing the paper's Verilog + SIS + SMV
tool chain at the structural level:

* :mod:`repro.rtl.logic` -- three-valued (0/1/X) logic operations.
* :mod:`repro.rtl.netlist` -- netlists of gates, transparent latches
  (active-high ``H`` or active-low ``L`` phase) and flip-flops.
* :mod:`repro.rtl.simulator` -- two-phase cycle simulation with
  X-propagation and combinational-cycle handling via ternary fixed
  points.
* :mod:`repro.rtl.batchsim` -- bit-parallel 64-lane two-phase
  simulation (one bit per lane in a two-plane value/known word pair),
  compiled into flat per-phase instruction lists.
* :mod:`repro.rtl.toposort` -- per-phase topological orders and
  combinational-cycle extraction shared by both simulators.
* :mod:`repro.rtl.area` -- constant propagation, dead-logic removal and
  literal/latch/flip-flop counting (the paper's Table 1 area columns).
"""

from repro.rtl.logic import AND, NOT, OR, X, lnot, land, lor, lxor, is_known
from repro.rtl.netlist import Gate, Latch, FlipFlop, Netlist, Phase
from repro.rtl.simulator import TwoPhaseSimulator, CombinationalCycleError
from repro.rtl.batchsim import (
    BatchSimulator,
    LaneOverride,
    broadcast,
    pack_stimulus,
    pack_values,
    unpack_lane,
)
from repro.rtl.toposort import find_combinational_cycle, topo_order
from repro.rtl.area import AreaReport, constant_propagate, count_area, prune_dead
from repro.rtl.export import channel_specs_smv, to_blif, to_smv, to_verilog

__all__ = [
    "AND",
    "NOT",
    "OR",
    "X",
    "lnot",
    "land",
    "lor",
    "lxor",
    "is_known",
    "Gate",
    "Latch",
    "FlipFlop",
    "Netlist",
    "Phase",
    "TwoPhaseSimulator",
    "CombinationalCycleError",
    "BatchSimulator",
    "LaneOverride",
    "broadcast",
    "pack_stimulus",
    "pack_values",
    "unpack_lane",
    "find_combinational_cycle",
    "topo_order",
    "AreaReport",
    "constant_propagate",
    "count_area",
    "prune_dead",
    "channel_specs_smv",
    "to_blif",
    "to_smv",
    "to_verilog",
]
