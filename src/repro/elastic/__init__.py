"""Elastic controllers: the SELF protocol with token counterflow.

Two implementation layers reproduce the paper's controllers:

* :mod:`repro.elastic.behavioral` -- cycle-accurate controller objects
  (elastic buffers, lazy/early joins, eager forks, passive anti-token
  interfaces, variable-latency controllers) connected by four-wire
  channels ``{V+, S+, V−, S−}`` and solved to a ternary fixed point each
  cycle.  This layer runs the Table 1 experiments.
* :mod:`repro.elastic.gates` -- the same controllers as gate/latch/FF
  netlists (Figs. 3--7) for area accounting and model checking.

:mod:`repro.elastic.protocol` defines the channel states, the
``(I*R*T)*`` language monitor and the dual-channel invariants.
"""

from repro.elastic.protocol import (
    ChannelState,
    DualChannelEvent,
    ProtocolMonitor,
    ProtocolViolation,
    classify,
    classify_dual,
    invariant_holds,
)
from repro.elastic.channel import Channel, ChannelStats
from repro.elastic.ee import EarlyEvalFunction, MuxEE, AndEE, ThresholdEE
from repro.elastic.behavioral import (
    Controller,
    ElasticBuffer,
    EagerFork,
    EarlyJoin,
    Join,
    LazyFork,
    PassiveAntiToken,
    Pipe,
    Sink,
    Source,
    VariableLatency,
    ElasticNetwork,
)

__all__ = [
    "ChannelState",
    "DualChannelEvent",
    "ProtocolMonitor",
    "ProtocolViolation",
    "classify",
    "classify_dual",
    "invariant_holds",
    "Channel",
    "ChannelStats",
    "EarlyEvalFunction",
    "MuxEE",
    "AndEE",
    "ThresholdEE",
    "Controller",
    "ElasticBuffer",
    "EagerFork",
    "EarlyJoin",
    "Join",
    "LazyFork",
    "PassiveAntiToken",
    "Pipe",
    "Sink",
    "Source",
    "VariableLatency",
    "ElasticNetwork",
]
