"""Instrumentation: token latency and occupancy measurement.

The paper evaluates *throughput*; latency-insensitive design equally
affects token *latency* (how many cycles a data item spends in the
system) and buffer occupancy.  This module provides:

* :class:`TracingSource` / :class:`TracingSink` -- stamp every payload
  with its birth cycle and record the age distribution at consumption;
* :class:`OccupancyProbe` -- per-cycle occupancy of a set of elastic
  buffers (tokens and anti-tokens separately);
* :func:`latency_stats` -- summary statistics of a latency sample.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.elastic.behavioral import Controller, ElasticBuffer, Sink, Source
from repro.elastic.channel import Channel


@dataclass(frozen=True)
class StampedToken:
    """A payload wrapped with its birth cycle."""

    payload: object
    born: int

    def __repr__(self) -> str:
        return f"<{self.payload!r}@{self.born}>"


class TracingSource(Source):
    """A source that wraps payloads in :class:`StampedToken`."""

    def __init__(self, name: str, output: Channel, **kwargs):
        self._clock = 0
        inner = kwargs.pop("data_fn", None) or (lambda n: n)
        super().__init__(
            name, output,
            data_fn=lambda n: StampedToken(inner(n), self._clock),
            **kwargs,
        )

    def commit(self) -> None:
        super().commit()
        self._clock += 1


class TracingSink(Sink):
    """A sink recording the age of every consumed token."""

    def __init__(self, name: str, input: Channel, **kwargs):
        super().__init__(name, input, **kwargs)
        self._clock = 0
        self.latencies: List[int] = []

    def commit(self) -> None:
        ch = self.input
        if ch.pos_transfer and isinstance(ch.data, StampedToken):
            self.latencies.append(self._clock - ch.data.born)
        self._clock += 1
        super().commit()


@dataclass
class LatencyStats:
    """Summary of a latency sample."""

    count: int
    mean: float
    p50: float
    p95: float
    maximum: int

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.2f} p50={self.p50:.0f} "
            f"p95={self.p95:.0f} max={self.maximum}"
        )


def latency_stats(latencies: Sequence[int]) -> LatencyStats:
    """Mean/median/p95/max of a latency sample."""
    if not latencies:
        return LatencyStats(0, 0.0, 0.0, 0.0, 0)
    ordered = sorted(latencies)
    n = len(ordered)

    def pct(p: float) -> float:
        idx = min(n - 1, max(0, math.ceil(p * n) - 1))
        return float(ordered[idx])

    return LatencyStats(
        count=n,
        mean=sum(ordered) / n,
        p50=pct(0.50),
        p95=pct(0.95),
        maximum=ordered[-1],
    )


class OccupancyProbe(Controller):
    """Samples buffer occupancy every cycle.

    Register it on a network *after* the buffers it watches; it owns no
    channels and only observes state during commit.
    """

    def __init__(self, name: str, buffers: Sequence[ElasticBuffer]):
        super().__init__(name)
        self.buffers = list(buffers)
        self.token_samples: List[int] = []
        self.anti_samples: List[int] = []

    def evaluate(self) -> bool:
        return False

    def commit(self) -> None:
        self.token_samples.append(sum(b.tokens for b in self.buffers))
        self.anti_samples.append(sum(b.anti_tokens for b in self.buffers))

    @property
    def mean_tokens(self) -> float:
        if not self.token_samples:
            return 0.0
        return sum(self.token_samples) / len(self.token_samples)

    @property
    def mean_anti_tokens(self) -> float:
        if not self.anti_samples:
            return 0.0
        return sum(self.anti_samples) / len(self.anti_samples)
