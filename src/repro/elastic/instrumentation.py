"""Instrumentation: token latency and occupancy measurement.

The paper evaluates *throughput*; latency-insensitive design equally
affects token *latency* (how many cycles a data item spends in the
system) and buffer occupancy.  This module provides:

* :class:`TracingSource` / :class:`TracingSink` -- stamp every payload
  with its birth cycle and record the age distribution at consumption;
* :class:`OccupancyProbe` -- per-cycle occupancy of a set of elastic
  buffers (tokens and anti-tokens separately);
* :func:`latency_stats` -- summary statistics of a latency sample.

Since the :mod:`repro.obs` metrics registry subsumed the ad-hoc
statistics, these classes are thin adapters over it: latencies land in
a ``token_latency_cycles`` histogram, occupancies in ``eb_tokens`` /
``eb_anti_tokens`` gauges.  Pass ``registry=`` to share one
:class:`~repro.obs.metrics.MetricsRegistry` across probes; without it
each probe owns a private registry, and the historical attribute API
(``latencies``, ``token_samples``, ``mean_tokens``, ...) is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.elastic.behavioral import Controller, ElasticBuffer, Sink, Source
from repro.elastic.channel import Channel
from repro.obs.metrics import Histogram, MetricsRegistry, SummaryStats, summarize

#: Backwards-compatible name: the summary type now lives in
#: :mod:`repro.obs.metrics` (same fields, same ``str()`` rendering).
LatencyStats = SummaryStats


@dataclass(frozen=True)
class StampedToken:
    """A payload wrapped with its birth cycle."""

    payload: object
    born: int

    def __repr__(self) -> str:
        return f"<{self.payload!r}@{self.born}>"


class TracingSource(Source):
    """A source that wraps payloads in :class:`StampedToken`."""

    def __init__(self, name: str, output: Channel, **kwargs):
        self._clock = 0
        inner = kwargs.pop("data_fn", None) or (lambda n: n)
        super().__init__(
            name, output,
            data_fn=lambda n: StampedToken(inner(n), self._clock),
            **kwargs,
        )

    def commit(self) -> None:
        super().commit()
        self._clock += 1


class TracingSink(Sink):
    """A sink recording the age of every consumed token.

    Ages accumulate in a ``token_latency_cycles{sink=<name>}``
    histogram; ``latencies`` exposes the raw samples as before.
    """

    def __init__(self, name: str, input: Channel,
                 registry: Optional[MetricsRegistry] = None, **kwargs):
        super().__init__(name, input, **kwargs)
        self._clock = 0
        self.registry = registry if registry is not None else MetricsRegistry()
        self._hist: Histogram = self.registry.histogram(
            "token_latency_cycles", sink=name
        )

    @property
    def latencies(self) -> List[int]:
        return self._hist.samples

    def commit(self) -> None:
        ch = self.input
        if ch.pos_transfer and isinstance(ch.data, StampedToken):
            self._hist.observe(self._clock - ch.data.born)
        self._clock += 1
        super().commit()


def latency_stats(latencies: Sequence[int]) -> LatencyStats:
    """Mean/median/p95/max of a latency sample."""
    return summarize(latencies)


class OccupancyProbe(Controller):
    """Samples buffer occupancy every cycle.

    Register it on a network *after* the buffers it watches; it owns no
    channels and only observes state during commit.  Every sample also
    updates the ``eb_tokens{probe=<name>}`` / ``eb_anti_tokens{...}``
    gauges, whose running min/mean/max feed metric snapshots.
    """

    def __init__(self, name: str, buffers: Sequence[ElasticBuffer],
                 registry: Optional[MetricsRegistry] = None):
        super().__init__(name)
        self.buffers = list(buffers)
        self.registry = registry if registry is not None else MetricsRegistry()
        self._tokens = self.registry.gauge("eb_tokens", probe=name)
        self._anti = self.registry.gauge("eb_anti_tokens", probe=name)
        self.token_samples: List[int] = []
        self.anti_samples: List[int] = []

    def evaluate(self) -> bool:
        return False

    def commit(self) -> None:
        tokens = sum(b.tokens for b in self.buffers)
        anti = sum(b.anti_tokens for b in self.buffers)
        self.token_samples.append(tokens)
        self.anti_samples.append(anti)
        self._tokens.set(tokens)
        self._anti.set(anti)

    @property
    def mean_tokens(self) -> float:
        if not self.token_samples:
            return 0.0
        return sum(self.token_samples) / len(self.token_samples)

    @property
    def mean_anti_tokens(self) -> float:
        if not self.anti_samples:
            return 0.0
        return sum(self.anti_samples) / len(self.anti_samples)
