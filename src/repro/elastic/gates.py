"""Gate-level elastic controllers (Figs. 3--7 of the paper).

Each builder adds one controller to a :class:`~repro.rtl.netlist.
Netlist`.  Channels are quadruples of signal names (:class:`GateChannel`)
``{V+, S+, V−, S−}``; a builder drives the two signals owned by its side
of each channel.  The equations transcribe the behavioural layer
(:mod:`repro.elastic.behavioral`) one-to-one, so the two layers can be
cross-checked, and the netlists feed

* the area pipeline of :mod:`repro.rtl.area` (Table 1 literal/latch/FF
  columns) -- state bits of elastic buffers are built as master/slave
  transparent-latch pairs (2 latches per EHB, 4 per EB, 8 per dual EB,
  matching the paper's counts), while the pending-token bits of forks
  and joins are flip-flops (the paper's ``ff`` column);
* the explicit-state model checker of :mod:`repro.verif` (Fig. 8(a)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.rtl.netlist import Netlist, Phase


@dataclass(frozen=True)
class GateChannel:
    """Signal names of one dual channel."""

    name: str
    vp: str
    sp: str
    vn: str
    sn: str

    @staticmethod
    def declare(nl: Netlist, name: str) -> "GateChannel":
        """Reserve the four wire names (drivers added by controllers)."""
        return GateChannel(name, f"{name}.vp", f"{name}.sp", f"{name}.vn", f"{name}.sn")

    def wires(self) -> Tuple[str, str, str, str]:
        return (self.vp, self.sp, self.vn, self.sn)


def ms_flop(nl: Netlist, d: str, q: Optional[str] = None, init: int = 0) -> str:
    """An edge-triggered bit as a master(L)/slave(H) latch pair.

    This is how the elasticization flow implements registers (step 1 of
    Sect. 6: registers become pairs of master-slave latches), and how
    EB state is stored so that latch counts match the paper's area
    numbers.
    """
    master = nl.add_latch(d, Phase.LOW, init=init)
    return nl.add_latch(master, Phase.HIGH, q=q, init=init)


# An EE netlist builder: given the netlist, the input V+ wires and the
# data wires bundled with each channel, return the enabling signal.
GateEE = Callable[[Netlist, Sequence[str], Sequence[Sequence[str]]], str]


def and_ee(nl: Netlist, vps: Sequence[str], datas: Sequence[Sequence[str]]) -> str:
    """The lazy join enabling function: conjunction of all valids."""
    return nl.AND(*vps)


def build_elastic_buffer(
    nl: Netlist,
    left: GateChannel,
    right: GateChannel,
    prefix: str,
    initial_tokens: int = 0,
    dual: bool = True,
    as_latches: bool = True,
) -> None:
    """A (dual) elastic buffer -- two EHBs, Fig. 3 / Fig. 5.

    State: up to two tokens (bits ``t0 >= t1``) and, when ``dual``, up
    to two anti-tokens (bits ``a0 >= a1``).  Each bit is a master/slave
    latch pair (2 latches per EHB, as the paper counts area); pass
    ``as_latches=False`` to use plain flip-flops instead, which halves
    the number of state bits for model checking without changing the
    cycle behaviour.  All four channel outputs are state-bit outputs,
    so an EB cuts every combinational path, and the cancellation gates
    sit at its boundaries exactly as the paper requires.
    """
    if not 0 <= initial_tokens <= 2:
        raise ValueError("an EB stores at most two tokens")

    def state_bit(d: str, q: str, init: int) -> str:
        if as_latches:
            return ms_flop(nl, d, q=q, init=init)
        return nl.add_flop(d, q=q, init=init)

    t0_d = f"{prefix}.t0_d"
    t1_d = f"{prefix}.t1_d"
    t0 = state_bit(t0_d, f"{prefix}.t0", 1 if initial_tokens >= 1 else 0)
    t1 = state_bit(t1_d, f"{prefix}.t1", 1 if initial_tokens >= 2 else 0)
    if dual:
        a0_d = f"{prefix}.a0_d"
        a1_d = f"{prefix}.a1_d"
        a0 = state_bit(a0_d, f"{prefix}.a0", 0)
        a1 = state_bit(a1_d, f"{prefix}.a1", 0)
    else:
        a0 = nl.const0(f"{prefix}.a0")
        a1 = nl.const0(f"{prefix}.a1")

    # Channel outputs: pure functions of state.
    nl.BUF(t0, out=right.vp)
    nl.BUF(a1, out=right.sn)
    nl.BUF(t1, out=left.sp)
    nl.BUF(a0, out=left.vn)

    # Boundary events (the cancellation gates of Fig. 5).
    n_t1 = nl.NOT(t1)
    n_t0 = nl.NOT(t0)
    n_a0 = nl.NOT(a0)
    n_a1 = nl.NOT(a1)
    n_spr = nl.NOT(right.sp)
    n_vnr = nl.NOT(right.vn)
    n_vpl = nl.NOT(left.vp)
    n_snl = nl.NOT(left.sn)

    in_pos = nl.AND(left.vp, n_t1, n_a0, out=f"{prefix}.in_pos")
    kill_left = nl.AND(left.vp, a0, out=f"{prefix}.kill_left")
    out_pos = nl.AND(t0, n_spr, n_vnr, out=f"{prefix}.out_pos")
    kill_right = nl.AND(t0, right.vn, out=f"{prefix}.kill_right")
    in_neg = nl.AND(right.vn, n_t0, n_a1, out=f"{prefix}.in_neg")
    out_neg = nl.AND(a0, n_snl, n_vpl, out=f"{prefix}.out_neg")

    inc = nl.OR(in_pos, kill_left, out_neg, out=f"{prefix}.inc")
    dec = nl.OR(out_pos, kill_right, in_neg, out=f"{prefix}.dec")
    up = nl.AND(inc, nl.NOT(dec), out=f"{prefix}.up")
    down = nl.AND(dec, nl.NOT(inc), out=f"{prefix}.down")
    n_up = nl.NOT(up)
    n_down = nl.NOT(down)

    # Signed-occupancy next state (count in [-2, 2]).  The gain terms
    # are written as in_pos/in_neg conjunctions (rather than up & !a0 /
    # down & !t0, which are equivalent) so that tying a channel's V−
    # wire to 0 makes the anti-token state bits *syntactically*
    # constant -- that is what lets sequential constant propagation
    # strip the negative logic of anti-token-free regions.
    nl.OR(
        nl.AND(t0, nl.OR(n_down, t1)),
        nl.AND(in_pos, nl.NOT(dec)),
        out=t0_d,
    )
    nl.OR(nl.AND(t1, n_down), nl.AND(t0, up), out=t1_d)
    if dual:
        nl.OR(
            nl.AND(a0, nl.OR(n_up, a1)),
            nl.AND(in_neg, nl.NOT(inc)),
            out=a0_d,
        )
        nl.OR(nl.AND(a1, n_up), nl.AND(a0, down), out=a1_d)


def build_join(
    nl: Netlist,
    inputs: Sequence[GateChannel],
    output: GateChannel,
    prefix: str,
    ee: Optional[GateEE] = None,
    datas: Optional[Sequence[Sequence[str]]] = None,
    g_inputs: Optional[Sequence[bool]] = None,
) -> None:
    """A dual join (Fig. 6(a)); with ``ee`` the early join of Fig. 6(c).

    ``ee`` builds the enabling function from the input valid wires and
    the per-channel data wires (``datas``); when omitted the lazy
    conjunction is used and no G gates are emitted.

    ``g_inputs`` selects which inputs get anti-token generation.  An
    input whose validity is implied by the EE function (e.g. the select
    of a multiplexer, which every cofactor requires) never receives an
    anti-token, so its G gate and pending flip-flop can be omitted --
    this is the simplification that leaves the paper's early join with
    one flip-flop per *data* input only.
    """
    n = len(inputs)
    early = ee is not None
    ee_builder = ee if ee is not None else and_ee
    data_wires: Sequence[Sequence[str]] = datas if datas is not None else [()] * n
    g_mask = list(g_inputs) if g_inputs is not None else [early] * n
    if len(g_mask) != n:
        raise ValueError("g_inputs mask length must match the inputs")

    apend = [
        nl.add_flop(f"{prefix}.apend{i}_d", q=f"{prefix}.apend{i}", init=0)
        for i in range(n)
    ]
    pending = nl.OR(*apend, out=f"{prefix}.pending") if n > 1 else nl.BUF(apend[0])
    n_pending = nl.NOT(pending)

    enable = ee_builder(nl, [ch.vp for ch in inputs], data_wires)
    nl.AND(enable, n_pending, out=output.vp)
    nl.BUF(pending, out=output.sn)

    fire = nl.AND(output.vp, nl.NOT(output.sp), out=f"{prefix}.fire")
    n_fire = nl.NOT(fire)
    forked = nl.AND(
        output.vn, nl.NOT(output.vp), n_pending, out=f"{prefix}.forked"
    )

    for i, ch in enumerate(inputs):
        terms = [apend[i], forked]
        generated = None
        if early and g_mask[i]:
            # G gate: anti-token for inputs absent at an (early) firing.
            generated = nl.AND(fire, nl.NOT(ch.vp), out=f"{prefix}.gen{i}")
            terms.append(generated)
        vn_i = nl.OR(*terms, out=ch.vn)
        nl.AND(n_fire, nl.NOT(vn_i), out=ch.sp)  # I gate keeps invariant (2)
        delivered = nl.AND(vn_i, nl.OR(ch.vp, nl.NOT(ch.sn)), out=f"{prefix}.del{i}")
        incoming = nl.OR(forked, generated) if generated is not None else forked
        nl.AND(nl.OR(apend[i], incoming), nl.NOT(delivered), out=f"{prefix}.apend{i}_d")


def build_fork(
    nl: Netlist,
    input: GateChannel,
    outputs: Sequence[GateChannel],
    prefix: str,
) -> None:
    """A dual eager fork (Fig. 6(b); positive part is Fig. 4(b)).

    One pending flip-flop per output remembers which copies of the
    current token are still owed; anti-tokens pass backwards through
    the fork only when present on every output channel (the lazy dual
    join), annihilating in-flight copies on the way.
    """
    n = len(outputs)
    pend = [
        nl.add_flop(f"{prefix}.pend{i}_d", q=f"{prefix}.pend{i}", init=1)
        for i in range(n)
    ]

    anti_all = nl.AND(*[ch.vn for ch in outputs]) if n > 1 else nl.BUF(outputs[0].vn)
    # The anti-token wave crosses only at a fresh token boundary (all
    # pending flags set); gating on state rather than on the upstream
    # wires keeps abutted forks free of combinational cycles (Sect. 4)
    # while a colliding token annihilates the wave (kill), preserving
    # Retry- persistence.  See the behavioural EagerFork.
    fresh = nl.AND(*pend, out=f"{prefix}.fresh") if n > 1 else nl.BUF(pend[0])
    vn_in = nl.AND(anti_all, fresh, out=input.vn)
    moved = nl.AND(vn_in, nl.OR(input.vp, nl.NOT(input.sn)),
                   out=f"{prefix}.moved")
    n_moved = nl.NOT(moved)

    done: List[str] = []
    completed: List[str] = []
    for i, ch in enumerate(outputs):
        vp_i = nl.AND(input.vp, pend[i], out=ch.vp)
        comp = nl.AND(vp_i, nl.OR(nl.NOT(ch.sp), ch.vn), out=f"{prefix}.comp{i}")
        completed.append(comp)
        done.append(nl.OR(nl.NOT(pend[i]), comp, out=f"{prefix}.done{i}"))
        nl.AND(n_moved, nl.NOT(vp_i), out=ch.sn)  # I gate
    all_done = nl.AND(*done, out=f"{prefix}.all_done") if n > 1 else nl.BUF(done[0])
    nl.AND(nl.NOT(all_done), nl.NOT(vn_in), out=input.sp)

    consumed = nl.AND(input.vp, all_done, out=f"{prefix}.consumed")
    for i in range(n):
        nl.OR(consumed, nl.AND(pend[i], nl.NOT(completed[i])), out=f"{prefix}.pend{i}_d")


def build_passive(
    nl: Netlist, up: GateChannel, down: GateChannel, prefix: str
) -> None:
    """The passive anti-token interface of Fig. 7(a).

    ``S− = not V+`` (the inverter); a kill downstream appears upstream
    as a plain transfer; the upstream region has no ``V−`` wires.
    """
    nl.BUF(up.vp, out=down.vp)
    nl.NOT(up.vp, out=down.sn)
    nl.const0(out=up.vn)
    nl.AND(down.sp, nl.NOT(down.vn), out=up.sp)


def build_variable_latency(
    nl: Netlist,
    left: GateChannel,
    right: GateChannel,
    prefix: str,
    done_input: str,
) -> Tuple[str, str]:
    """The variable-latency controller of Fig. 7(b).

    The functional unit is abstracted by the ``done_input`` wire (a
    non-deterministic primary input during model checking): it may be
    asserted any cycle while the unit is occupied.  Returns the
    ``(go, ack)`` handshake wires toward the unit.
    """
    occ = nl.add_flop(f"{prefix}.occ_d", q=f"{prefix}.occ", init=0)
    fin = nl.add_flop(f"{prefix}.fin_d", q=f"{prefix}.fin", init=0)
    n_occ = nl.NOT(occ)

    nl.BUF(fin, out=right.vp)
    busy = nl.AND(occ, nl.NOT(fin), out=f"{prefix}.busy")
    # While busy an anti-token is *accepted* -- it preempts the
    # computation in flight (counterflow preemption, refs [1, 2]).
    nl.AND(n_occ, left.sn, nl.NOT(left.vp), out=right.sn)
    vn_in = nl.AND(right.vn, n_occ, out=left.vn)
    abort = nl.AND(busy, right.vn, out=f"{prefix}.abort")

    ack = nl.AND(fin, nl.OR(nl.NOT(right.sp), right.vn), out=f"{prefix}.ack")
    # A new operand is accepted while idle or in the cycle the previous
    # result departs (back-to-back go/ack on the Fig. 7(b) interface).
    nl.AND(occ, nl.NOT(ack), out=left.sp)
    go = nl.AND(left.vp, nl.OR(n_occ, ack), nl.NOT(vn_in), out=f"{prefix}.go")
    nl.AND(
        nl.OR(go, nl.AND(occ, nl.NOT(ack))),
        nl.NOT(abort),
        out=f"{prefix}.occ_d",
    )
    nl.AND(
        nl.OR(fin, nl.AND(busy, done_input)),
        nl.NOT(ack),
        nl.NOT(abort),
        out=f"{prefix}.fin_d",
    )
    return go, ack


def build_nd_source(
    nl: Netlist, output: GateChannel, prefix: str, choice_input: str
) -> None:
    """A protocol-obeying non-deterministic producer.

    ``choice_input`` freely decides whether to offer a token; an FF
    enforces SELF persistence (a retried token stays offered).  The
    source has no anti-token support: ``S− = not V+`` (passive rule).
    """
    pend = nl.add_flop(f"{prefix}.pend_d", q=f"{prefix}.pend", init=0)
    vp = nl.OR(pend, choice_input, out=output.vp)
    nl.NOT(vp, out=output.sn)
    retry = nl.AND(vp, output.sp, nl.NOT(output.vn), out=f"{prefix}.retry")
    nl.BUF(retry, out=f"{prefix}.pend_d")


def build_nd_sink(
    nl: Netlist,
    input: GateChannel,
    prefix: str,
    stall_input: str,
    kill_input: Optional[str] = None,
) -> None:
    """A protocol-obeying non-deterministic consumer.

    Each cycle it stalls (``stall_input``), sends an anti-token
    (``kill_input``, if provided) or accepts.  Anti-token persistence
    (Retry−) is enforced by a flip-flop; the invariant ``not (V− and
    S+)`` is kept by priority of kill over stall.
    """
    if kill_input is not None:
        apend = nl.add_flop(f"{prefix}.apend_d", q=f"{prefix}.apend", init=0)
        vn = nl.OR(apend, kill_input, out=input.vn)
        nl.AND(stall_input, nl.NOT(vn), out=input.sp)
        retry_neg = nl.AND(vn, input.sn, nl.NOT(input.vp), out=f"{prefix}.retryn")
        nl.BUF(retry_neg, out=f"{prefix}.apend_d")
    else:
        nl.const0(out=input.vn)
        nl.BUF(stall_input, out=input.sp)
