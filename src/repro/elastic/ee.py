"""Early-evaluation (EE) enabling functions.

The early-evaluation join of Sect. 4.2 replaces the conjunction of the
input ``V+`` signals by a function ``EE(V+_1..V+_n, data)`` that may be
asserted before all inputs are valid.  Sect. 4.3 imposes the *positive
unateness* constraint: every cofactor of EE with respect to the data
inputs must be positive unate in the valid signals -- decisions are
made on the **presence** of inputs, never on their absence.

This module provides ready-made EE functions (multiplexer select,
plain conjunction, k-of-n threshold) and an exhaustive unateness
checker used by the tests.
"""

from __future__ import annotations

import itertools
from typing import Callable, List, Mapping, Optional, Sequence

from repro.rtl.logic import Value, X, is_known, land, lnot, lor


class EarlyEvalFunction:
    """Base class for EE functions.

    Subclasses implement :meth:`evaluate` over ternary valid signals and
    the data payloads of the *valid* channels (payloads of invalid
    channels are ``None``).  The result must be monotone: turning an
    ``X`` valid into a known value may only turn an ``X`` result into a
    known one.
    """

    #: number of input channels this function expects
    arity: int = 0

    def evaluate(self, valids: Sequence[Value], datas: Sequence[object]) -> Value:
        """Ternary enabling value given current valid/data wires."""
        raise NotImplementedError

    def output_data(self, valids: Sequence[Value], datas: Sequence[object]) -> object:
        """Payload produced when the join fires (default: tuple of datas)."""
        return tuple(datas)


class AndEE(EarlyEvalFunction):
    """The lazy join as an EE function: all inputs must be valid."""

    def __init__(self, arity: int):
        self.arity = arity

    def evaluate(self, valids: Sequence[Value], datas: Sequence[object]) -> Value:
        return land(*valids)


class MuxEE(EarlyEvalFunction):
    """Multiplexer enabling: the select channel plus the chosen operand.

    This is the paper's running example::

        EE = V+_s and ((s and V+_a) or (not s and V+_b))

    Args:
        select: index of the select channel.
        chooser: maps the select payload to the index of the required
            data channel.
        arity: total number of input channels.
    """

    def __init__(self, select: int, chooser: Callable[[object], int], arity: int):
        self.arity = arity
        self.select = select
        self.chooser = chooser

    def evaluate(self, valids: Sequence[Value], datas: Sequence[object]) -> Value:
        vs = valids[self.select]
        if not is_known(vs):
            return X
        if vs == 0:
            return 0
        chosen = self.chooser(datas[self.select])
        if not 0 <= chosen < self.arity:
            raise ValueError(f"chooser picked invalid channel {chosen}")
        return valids[chosen]

    def output_data(self, valids: Sequence[Value], datas: Sequence[object]) -> object:
        """The selected operand's payload."""
        return datas[self.chooser(datas[self.select])]


class ThresholdEE(EarlyEvalFunction):
    """k-of-n enabling: fire as soon as ``k`` inputs are valid.

    Models OR-causality (k=1) and general partial joins.  Positive unate
    by construction (more valid inputs never disable it).
    """

    def __init__(self, k: int, arity: int):
        if not 1 <= k <= arity:
            raise ValueError("threshold must satisfy 1 <= k <= arity")
        self.k = k
        self.arity = arity

    def evaluate(self, valids: Sequence[Value], datas: Sequence[object]) -> Value:
        ones = sum(1 for v in valids if is_known(v) and v == 1)
        unknown = sum(1 for v in valids if not is_known(v))
        if ones >= self.k:
            return 1
        if ones + unknown < self.k:
            return 0
        return X

    def output_data(self, valids: Sequence[Value], datas: Sequence[object]) -> object:
        return tuple(d for v, d in zip(valids, datas) if v == 1)


def check_positive_unate(
    ee: EarlyEvalFunction,
    data_domain: Sequence[object],
    select_indices: Optional[Sequence[int]] = None,
) -> bool:
    """Exhaustively check the Sect. 4.3 unateness constraint.

    For every assignment of data values (drawn from ``data_domain`` for
    the channels in ``select_indices``, all channels by default) and
    every pair of valid vectors ``u <= v`` (componentwise), requires
    ``EE(u) <= EE(v)``.  Only feasible for small arities; the
    controllers in this repo have at most 4 inputs.

    Returns True or raises ``AssertionError`` naming the violation.
    """
    n = ee.arity
    indices = list(select_indices) if select_indices is not None else list(range(n))

    def data_for(assignment: Mapping[int, object], valids: Sequence[int]) -> List[object]:
        return [
            (assignment.get(i) if valids[i] else None) if i in indices else None
            for i in range(n)
        ]

    for combo in itertools.product(data_domain, repeat=len(indices)):
        assignment = dict(zip(indices, combo))
        results = {}
        for valids in itertools.product((0, 1), repeat=n):
            val = ee.evaluate(list(valids), data_for(assignment, valids))
            if not is_known(val):
                raise AssertionError(f"EE returned X on fully known inputs {valids}")
            results[valids] = val
        for u in results:
            for i in range(n):
                if u[i] == 1:
                    continue
                v = tuple(1 if j == i else u[j] for j in range(n))
                if results[u] == 1 and results[v] == 0:
                    raise AssertionError(
                        f"EE not positive unate: EE{u}=1 but EE{v}=0 "
                        f"(data {assignment})"
                    )
    return True
