"""Dual elastic channels for the behavioural simulator.

A :class:`Channel` carries the four control wires ``{V+, S+, V−, S−}``
plus a data payload.  Within a simulated cycle all wires start unknown
(``X``) and are *driven* monotonically by the controllers at the two
ends until the network reaches a fixed point:

* the **producer** end drives ``V+`` (and the data payload) and ``S−``;
* the **consumer** end drives ``S+`` and ``V−``.

Driving a wire twice with conflicting known values raises -- that would
mean two controllers disagree about the same physical signal, i.e. a
bug in a controller's equations.

After the network settles, :meth:`Channel.finish_cycle` classifies the
cycle (positive/negative transfer, kill, retry, idle), updates the
channel statistics, and runs the protocol monitor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.elastic.protocol import (
    DualChannelEvent,
    ProtocolMonitor,
    ProtocolViolation,
    classify_dual,
)
from repro.rtl.logic import Value, X, is_known


@dataclass
class ChannelStats:
    """Per-channel event counters (the Table 1 columns)."""

    cycles: int = 0
    positive: int = 0
    negative: int = 0
    kills: int = 0
    retries_pos: int = 0
    retries_neg: int = 0
    idle: int = 0

    def record(self, event: DualChannelEvent) -> None:
        self.cycles += 1
        if event is DualChannelEvent.POSITIVE_TRANSFER:
            self.positive += 1
        elif event is DualChannelEvent.NEGATIVE_TRANSFER:
            self.negative += 1
        elif event is DualChannelEvent.KILL:
            self.kills += 1
        elif event is DualChannelEvent.RETRY_POS:
            self.retries_pos += 1
        elif event is DualChannelEvent.RETRY_NEG:
            self.retries_neg += 1
        else:
            self.idle += 1

    @property
    def throughput(self) -> float:
        """(positive + negative + kills) per cycle -- the paper's Th."""
        if self.cycles == 0:
            return 0.0
        return (self.positive + self.negative + self.kills) / self.cycles

    def accounting(self) -> Dict[str, int]:
        """Cycle accounting keyed by the strict-bit category names.

        The keys match the gate-level classifier used by
        :mod:`repro.obs.analyze`, so behavioural and RTL profiles share
        one report schema.
        """
        return {
            "transfer+": self.positive,
            "transfer-": self.negative,
            "kill": self.kills,
            "retry+": self.retries_pos,
            "retry-": self.retries_neg,
            "idle": self.idle,
        }

    def rates(self) -> Dict[str, float]:
        """Per-cycle rates of the three moving events."""
        c = self.cycles or 1
        return {
            "+": self.positive / c,
            "-": self.negative / c,
            "±": self.kills / c,
        }

    def __str__(self) -> str:
        r = self.rates()
        return f"Th={self.throughput:.3f} (+{r['+']:.3f} -{r['-']:.3f} ±{r['±']:.3f})"


class Channel:
    """One dual elastic channel between two controller ports."""

    def __init__(self, name: str, monitor: bool = True, check_data: bool = True):
        self.name = name
        self.stats = ChannelStats()
        self.monitor: Optional[ProtocolMonitor] = (
            ProtocolMonitor(name, check_data=check_data) if monitor else None
        )
        self.vp: Value = X
        self.sp: Value = X
        self.vn: Value = X
        self.sn: Value = X
        self.data: object = None
        self.last_event: Optional[DualChannelEvent] = None
        #: external per-cycle watchers ``fn(channel)`` called on every
        #: settled cycle *before* the raising protocol monitor -- the
        #: attachment point for the non-raising fault-campaign monitors
        #: of :mod:`repro.faults.monitors`.
        self.observers: List[Callable[["Channel"], None]] = []

    # ------------------------------------------------------------------
    # Driving (monotone: X -> known only; conflicting drives raise)
    # ------------------------------------------------------------------
    def _drive(self, wire: str, value: Value) -> bool:
        """Drive ``wire``; returns True if the wire value changed."""
        if value is X:
            return False
        current = getattr(self, wire)
        if current is X:
            setattr(self, wire, 1 if value else 0)
            return True
        if (1 if value else 0) != current:
            raise ProtocolViolation(
                f"{self.name}.{wire}: conflicting drives {current} vs {value}"
            )
        return False

    def drive_vp(self, value: Value) -> bool:
        """Producer drives Valid+ (forward data valid)."""
        return self._drive("vp", value)

    def drive_sp(self, value: Value) -> bool:
        """Consumer drives Stop+ (token back-pressure)."""
        return self._drive("sp", value)

    def drive_vn(self, value: Value) -> bool:
        """Consumer drives Valid− (anti-token travelling backwards)."""
        return self._drive("vn", value)

    def drive_sn(self, value: Value) -> bool:
        """Producer drives Stop− (anti-token back-pressure)."""
        return self._drive("sn", value)

    def put_data(self, payload: object) -> None:
        """Producer attaches the payload accompanying ``V+``."""
        self.data = payload

    def force(self, wire: str, value: Value) -> None:
        """Fault-injection hook: overwrite a wire after the network settled.

        Unlike the ``drive_*`` methods this bypasses the monotone-drive
        discipline -- it models a glitch corrupting the physical wire
        between the drivers' fixed point and the receivers' sampling
        edge.  Use only between :meth:`ElasticNetwork` settling and
        ``finish_cycle`` (see ``ElasticNetwork.add_saboteur``).
        """
        if wire not in ("vp", "sp", "vn", "sn"):
            raise ValueError(f"unknown wire {wire!r}")
        setattr(self, wire, value)

    # ------------------------------------------------------------------
    # Settled-cycle queries (used by controller commit phases)
    # ------------------------------------------------------------------
    def settled(self) -> bool:
        """True once all four wires are known."""
        return all(is_known(w) for w in (self.vp, self.sp, self.vn, self.sn))

    def require_settled(self) -> None:
        if not self.settled():
            raise ProtocolViolation(
                f"{self.name}: wires did not settle "
                f"(V+={self.vp} S+={self.sp} V-={self.vn} S-={self.sn})"
            )

    @property
    def pos_transfer(self) -> bool:
        """Token moves forward this cycle."""
        return self.vp == 1 and self.sp == 0 and self.vn == 0

    @property
    def neg_transfer(self) -> bool:
        """Anti-token moves backward this cycle."""
        return self.vn == 1 and self.sn == 0 and self.vp == 0

    @property
    def kill(self) -> bool:
        """Token and anti-token annihilate on the channel this cycle."""
        return self.vp == 1 and self.vn == 1

    # ------------------------------------------------------------------
    # Cycle lifecycle
    # ------------------------------------------------------------------
    def begin_cycle(self) -> None:
        """Reset all wires to unknown at the start of a cycle."""
        self.vp = X
        self.sp = X
        self.vn = X
        self.sn = X
        self.data = None

    def finish_cycle(self) -> DualChannelEvent:
        """Classify and record the settled cycle."""
        self.require_settled()
        for observer in self.observers:
            observer(self)
        if self.monitor is not None:
            event = self.monitor.observe(self.vp, self.sp, self.vn, self.sn, self.data)
        else:
            event = classify_dual(self.vp, self.sp, self.vn, self.sn)
        self.stats.record(event)
        self.last_event = event
        return event

    def __repr__(self) -> str:
        return f"Channel({self.name!r}, {self.stats})"
