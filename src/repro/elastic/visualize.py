"""Text rendering of channel activity: the token game, in ASCII.

Every channel records its per-cycle event classification; this module
renders those histories as compact waveforms for debugging and for the
examples::

    cycle       0123456789...
    Din->S      +++R+±++-..
    F3->W       ..++--±+R-.

Legend: ``+`` positive transfer, ``-`` negative (anti-token) transfer,
``±`` kill, ``R``/``r`` positive/negative retry, ``.`` idle.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.elastic.behavioral import ElasticNetwork
from repro.elastic.channel import Channel
from repro.elastic.protocol import DualChannelEvent

_GLYPH = {
    DualChannelEvent.POSITIVE_TRANSFER: "+",
    DualChannelEvent.NEGATIVE_TRANSFER: "-",
    DualChannelEvent.KILL: "±",
    DualChannelEvent.RETRY_POS: "R",
    DualChannelEvent.RETRY_NEG: "r",
    DualChannelEvent.IDLE: ".",
}


def channel_waveform(channel: Channel, last: Optional[int] = None) -> str:
    """One channel's event history as a glyph string.

    Requires the channel's protocol monitor (it records the history);
    ``last`` trims to the most recent cycles.
    """
    if channel.monitor is None:
        raise ValueError(f"channel {channel.name!r} has no monitor/history")
    history = channel.monitor.history
    if last is not None:
        history = history[-last:]
    return "".join(_GLYPH[ev] for ev in history)


def render_waveforms(
    network: ElasticNetwork,
    channels: Optional[Sequence[str]] = None,
    last: int = 60,
) -> str:
    """A waveform table for (selected) channels of a network."""
    names = list(channels) if channels is not None else sorted(network.channels)
    rows: List[str] = []
    width = max((len(n) for n in names), default=5)
    total = network.cycle
    start = max(0, total - last)
    header = f"{'cycle':<{width}}  {start}..{total - 1}"
    rows.append(header)
    for name in names:
        ch = network.channels[name]
        rows.append(f"{name:<{width}}  {channel_waveform(ch, last=last)}")
    return "\n".join(rows)


def event_summary(network: ElasticNetwork) -> str:
    """Aggregate event counts over all channels (a one-line health check)."""
    totals: Dict[str, int] = {"+": 0, "-": 0, "±": 0, "R": 0, "r": 0, ".": 0}
    for ch in network.channels.values():
        s = ch.stats
        totals["+"] += s.positive
        totals["-"] += s.negative
        totals["±"] += s.kills
        totals["R"] += s.retries_pos
        totals["r"] += s.retries_neg
        totals["."] += s.idle
    parts = " ".join(f"{k}:{v}" for k, v in totals.items())
    return f"{network.cycle} cycles, {len(network.channels)} channels | {parts}"
