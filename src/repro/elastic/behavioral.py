"""Cycle-accurate behavioural elastic controllers and network simulator.

Each controller owns ports on dual channels (:class:`~repro.elastic.
channel.Channel`) and implements two methods:

* ``evaluate()`` -- combinational: read the current (possibly unknown)
  wire values and drive output wires using ternary logic.  Called
  repeatedly until the whole network reaches a fixed point; all
  equations are monotone (X can only resolve to 0/1), so the fixed
  point exists and is unique.
* ``commit()`` -- sequential: called once per cycle after the network
  settled, to update internal state (buffer occupancy, pending-token
  flip-flops, variable-latency countdowns).

The controller equations transcribe Figs. 3--7 of the paper at the
cycle level:

* :class:`ElasticBuffer` -- a dual EB (two EHBs): capacity 2 for tokens
  and anti-tokens, forward and backward latency 1, cancellation at its
  boundaries (Fig. 5).
* :class:`Join` -- lazy join for tokens + eager fork for anti-tokens
  with one pending flip-flop per input and the B gate preventing new
  transfers while anti-tokens drain (Fig. 6(a)).
* :class:`EagerFork` -- eager fork for tokens (pending FF per output)
  + lazy join for anti-tokens; the half-turn symmetric image of the
  join (Fig. 6(b)).
* :class:`EarlyJoin` -- join with an early-evaluation function and the
  G gates ``not V+in and V+out and not S+out`` generating anti-tokens
  at the inputs that were not valid when the output fired (Fig. 6(c)).
* :class:`PassiveAntiToken` -- the Fig. 7(a) interface: stops
  anti-token propagation with ``S− = not V+`` and converts kills into
  plain transfers for the anti-token-free upstream region.
* :class:`VariableLatency` -- the Fig. 7(b) go/done/ack controller.
* :class:`Source` / :class:`Sink` -- environment producers and
  consumers, including the non-deterministic killing consumers used in
  the Fig. 8(b) verification set-up.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.elastic.channel import Channel
from repro.elastic.ee import AndEE, EarlyEvalFunction
from repro.elastic.protocol import ProtocolViolation
from repro.rtl.logic import Value, X, is_known, land, lnot, lor


def _b(value: object) -> Value:
    """Python bool/int -> canonical wire value."""
    return 1 if value else 0


#: Sentinel for "no payload latched" (None is legitimate channel data).
_NO_HELD_DATA = object()


class Controller:
    """Base class: a named controller with evaluate/commit phases."""

    def __init__(self, name: str):
        self.name = name

    def channels(self) -> Sequence[Channel]:
        """Channels this controller is connected to (for registration)."""
        return ()

    def evaluate(self) -> bool:
        """Drive output wires; return True if any wire changed."""
        raise NotImplementedError

    def commit(self) -> None:
        """Update sequential state from the settled wires."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


# ----------------------------------------------------------------------
# Elastic buffer (dual EB = two EHBs, Fig. 5)
# ----------------------------------------------------------------------
class ElasticBuffer(Controller):
    """A dual elastic buffer of capacity 2 (one EB = two EHBs).

    State is the signed occupancy ``count``: positive values are stored
    tokens (with payloads, FIFO), negative values stored anti-tokens.
    All four output wires are pure functions of the state, so an EB cuts
    every combinational path -- exactly why the paper places the
    cancellation gates at EHB boundaries.

    Wire equations (left = input channel, right = output channel)::

        right.V+ = count > 0          right.S− = count <= -capacity
        left.S+  = count >= capacity  left.V−  = count < 0

    which preserve the invariants of equation (2) by construction.
    """

    def __init__(
        self,
        name: str,
        left: Channel,
        right: Channel,
        capacity: int = 2,
        initial_tokens: int = 0,
        initial_data: Optional[Sequence[object]] = None,
    ):
        super().__init__(name)
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if not 0 <= initial_tokens <= capacity:
            raise ValueError("initial tokens must fit the capacity")
        self.left = left
        self.right = right
        self.capacity = capacity
        self.count = initial_tokens
        if initial_data is not None:
            if len(initial_data) != initial_tokens:
                raise ValueError("initial_data length must equal initial_tokens")
            self.data: List[object] = list(initial_data)
        else:
            self.data = [None] * initial_tokens
        self._initial = (initial_tokens, list(self.data))

    def channels(self) -> Sequence[Channel]:
        return (self.left, self.right)

    def reset(self) -> None:
        self.count, data = self._initial
        self.data = list(data)

    @property
    def tokens(self) -> int:
        """Stored tokens (0 when holding anti-tokens)."""
        return max(self.count, 0)

    @property
    def anti_tokens(self) -> int:
        """Stored anti-tokens (0 when holding tokens)."""
        return max(-self.count, 0)

    def evaluate(self) -> bool:
        changed = False
        has_token = self.count > 0
        changed |= self.right.drive_vp(_b(has_token))
        if has_token:
            self.right.put_data(self.data[0])
        changed |= self.right.drive_sn(_b(self.count <= -self.capacity))
        changed |= self.left.drive_sp(_b(self.count >= self.capacity))
        changed |= self.left.drive_vn(_b(self.count < 0))
        return changed

    def commit(self) -> None:
        left, right = self.left, self.right
        in_pos = left.pos_transfer
        kill_left = left.kill
        out_neg = left.neg_transfer
        out_pos = right.pos_transfer
        kill_right = right.kill
        in_neg = right.neg_transfer

        if out_pos or kill_right:
            # Head token leaves (transfer) or is annihilated by an
            # incoming anti-token at the output boundary.
            self.data.pop(0)
            self.count -= 1
        if kill_left or out_neg:
            # A stored anti-token annihilates an arriving token, or
            # moves backwards onto the input channel.
            self.count += 1
        if in_pos:
            self.count += 1
            if in_neg:
                # Token and anti-token entered opposite ends of an empty
                # buffer in the same cycle: they annihilate inside.
                self.count -= 1
            else:
                self.data.append(left.data)
        elif in_neg:
            self.count -= 1
        if not -self.capacity <= self.count <= self.capacity:
            raise ProtocolViolation(f"{self.name}: occupancy {self.count} out of range")
        if len(self.data) != max(self.count, 0):
            raise ProtocolViolation(f"{self.name}: data/occupancy mismatch")


# ----------------------------------------------------------------------
# Join (lazy for tokens, eager fork for anti-tokens, Fig. 6(a))
# ----------------------------------------------------------------------
class Join(Controller):
    """Dual join controller.

    Positive flow (lazy): ``V+out = AND(V+in_i) and not pending`` where
    *pending* is the B gate -- any anti-token still stored in the
    per-input flip-flops blocks new transfers.  ``S+in_i`` stops an
    input when no output transfer happens, with an I gate keeping the
    invariant ``not (V− and S+)``.

    Negative flow (eager fork): an anti-token arriving on the output
    channel is broadcast backwards to every input the same cycle;
    inputs that cannot take it (no token to kill, and anti-token
    back-pressure) latch it in their flip-flop.
    """

    def __init__(
        self,
        name: str,
        inputs: Sequence[Channel],
        output: Channel,
        combine: Optional[Callable[[Sequence[object]], object]] = None,
    ):
        super().__init__(name)
        if not inputs:
            raise ValueError("a join needs at least one input")
        self.inputs = list(inputs)
        self.output = output
        self.combine = combine if combine is not None else tuple
        self.apend = [0] * len(self.inputs)

    def channels(self) -> Sequence[Channel]:
        return (*self.inputs, self.output)

    def evaluate(self) -> bool:
        changed = False
        out = self.output
        pending = _b(any(self.apend))

        vp_out = land(lnot(pending), *[ch.vp for ch in self.inputs])
        changed |= out.drive_vp(vp_out)
        if vp_out == 1:
            out.put_data(self.combine([ch.data for ch in self.inputs]))
        # B gate also back-pressures further anti-tokens while draining.
        changed |= out.drive_sn(pending)

        # Eager anti-token fork: broadcast an accepted anti-token, plus
        # any anti-tokens still pending in the flip-flops.
        forked = land(out.vn, lnot(vp_out), lnot(pending))
        fire = land(vp_out, lnot(out.sp))
        for i, ch in enumerate(self.inputs):
            vn_i = lor(_b(self.apend[i]), forked)
            changed |= ch.drive_vn(vn_i)
            # I gate: never stop a token we are about to kill.
            changed |= ch.drive_sp(land(lnot(fire), lnot(vn_i)))
        return changed

    def commit(self) -> None:
        out = self.output
        accepted = out.neg_transfer  # anti-token taken from the output channel
        for i, ch in enumerate(self.inputs):
            offered = ch.vn == 1
            delivered = offered and (ch.vp == 1 or ch.sn == 0)
            incoming = accepted
            self.apend[i] = _b((self.apend[i] or incoming) and not delivered)


# ----------------------------------------------------------------------
# Early-evaluation join (Fig. 6(c))
# ----------------------------------------------------------------------
class EarlyJoin(Controller):
    """Join with early evaluation and anti-token generation.

    The EE block replaces the conjunction of input valids; the G gates
    implement ``V−in_i = not V+in_i and V+out and not S+out`` feeding
    the per-input anti-token flip-flops (shared with the eager
    anti-token fork for anti-tokens arriving from the output channel).

    ``anti_capacity`` implements the Sect. 7 extension: each input may
    store up to that many pending anti-tokens (the paper uses 1 and
    reports "little experimental motivation" for more -- which the
    ablation benches reproduce).  With pending anti-tokens on an input,
    that input's valid is masked (an arriving token annihilates before
    it can be consumed), and the B gate only blocks new firings when a
    counter is full.
    """

    def __init__(
        self,
        name: str,
        inputs: Sequence[Channel],
        output: Channel,
        ee: EarlyEvalFunction,
        anti_capacity: int = 1,
    ):
        super().__init__(name)
        if ee.arity != len(inputs):
            raise ValueError("EE arity must match the number of inputs")
        if anti_capacity < 1:
            raise ValueError("anti_capacity must be >= 1")
        self.inputs = list(inputs)
        self.output = output
        self.ee = ee
        self.anti_capacity = anti_capacity
        self.apend = [0] * len(self.inputs)
        self._held_data: object = _NO_HELD_DATA

    def channels(self) -> Sequence[Channel]:
        return (*self.inputs, self.output)

    def _ee_inputs(self) -> Tuple[List[Value], List[object]]:
        # Inputs with pending anti-tokens are masked: their next token
        # is already doomed and cannot be consumed by a firing.
        valids = [
            land(ch.vp, _b(self.apend[i] == 0))
            for i, ch in enumerate(self.inputs)
        ]
        datas = [
            ch.data if (ch.vp == 1 and self.apend[i] == 0) else None
            for i, ch in enumerate(self.inputs)
        ]
        return valids, datas

    def evaluate(self) -> bool:
        changed = False
        out = self.output
        full = _b(any(c >= self.anti_capacity for c in self.apend))

        valids, datas = self._ee_inputs()
        ee_val = self.ee.evaluate(valids, datas)
        vp_out = land(ee_val, lnot(full))
        changed |= out.drive_vp(vp_out)
        if vp_out == 1:
            # SELF persistence: a token stalled in Retry+ must keep the
            # payload it was first offered with, even if a late input
            # arrives mid-retry and EE would now see more operands
            # (positive unateness keeps V+ itself asserted).
            if self._held_data is not _NO_HELD_DATA:
                out.put_data(self._held_data)
            else:
                out.put_data(self.ee.output_data(valids, datas))
        changed |= out.drive_sn(full)

        fire = land(vp_out, lnot(out.sp))
        forked = land(out.vn, lnot(vp_out), lnot(full))
        for i, ch in enumerate(self.inputs):
            # G gate: early firing leaves an anti-token on inputs whose
            # (unmasked) token was absent.
            generated = land(fire, lnot(valids[i]))
            vn_i = lor(_b(self.apend[i] > 0), generated, forked)
            changed |= ch.drive_vn(vn_i)
            changed |= ch.drive_sp(land(lnot(fire), lnot(vn_i)))
        return changed

    def commit(self) -> None:
        out = self.output
        fire = out.vp == 1 and out.sp == 0
        accepted = out.neg_transfer
        for i, ch in enumerate(self.inputs):
            masked_valid = ch.vp == 1 and self.apend[i] == 0
            generated = fire and not masked_valid
            offered = ch.vn == 1
            delivered = offered and (ch.vp == 1 or ch.sn == 0)
            incoming = 1 if (accepted or generated) else 0
            self.apend[i] = self.apend[i] + incoming - (1 if delivered else 0)
            if not 0 <= self.apend[i] <= self.anti_capacity:
                raise ProtocolViolation(
                    f"{self.name}: anti-token counter {i} out of range"
                )
        # Latch the offered payload across a Retry+ stall; any other
        # outcome (transfer, idle, kill) starts a fresh transaction.
        if out.vp == 1 and out.sp == 1:
            self._held_data = out.data
        else:
            self._held_data = _NO_HELD_DATA


# ----------------------------------------------------------------------
# Eager fork (Fig. 6(b); positive part also Fig. 4(b))
# ----------------------------------------------------------------------
class EagerFork(Controller):
    """Dual eager fork controller.

    Positive flow (eager): every output channel receives its copy of
    the input token as soon as it can, independently of its siblings;
    a flip-flop per output remembers which copies are still owed
    (``pend``).  The input token is consumed once every copy has either
    transferred or been annihilated by a branch anti-token.

    Negative flow (lazy join): anti-tokens propagate backwards through
    the fork only when present on *all* output channels and no token is
    in flight -- the exact dual of the lazy token join.
    """

    def __init__(
        self,
        name: str,
        input: Channel,
        outputs: Sequence[Channel],
        branch_data: Optional[Callable[[int, object], object]] = None,
    ):
        super().__init__(name)
        if not outputs:
            raise ValueError("a fork needs at least one output")
        self.input = input
        self.outputs = list(outputs)
        self.branch_data = branch_data
        self.pend = [1] * len(self.outputs)

    def channels(self) -> Sequence[Channel]:
        return (self.input, *self.outputs)

    def evaluate(self) -> bool:
        changed = False
        inp = self.input
        done: List[Value] = []
        anti_all = land(*[ch.vn for ch in self.outputs])
        # The anti-token wave crosses the fork only at a fresh token
        # boundary (every pending flag set): a half-delivered token
        # must finish first, or branch anti-tokens targeting different
        # tokens would be merged.  Gating on *state* (never on the
        # upstream S-/V+ wires) keeps V-in free of combinational cycles
        # when forks abut -- the hazard Sect. 4 warns about -- and
        # Retry- persistence holds because a colliding token is
        # annihilated (kill) instead of forcing a withdrawal.
        fresh = _b(all(self.pend))
        vn_in = land(anti_all, fresh)
        changed |= inp.drive_vn(vn_in)
        # The wave is consumed when the input channel moves it: a
        # negative transfer backwards, or a kill against an arriving
        # token (which annihilates every branch copy at once).
        moved = land(vn_in, lor(inp.vp, lnot(inp.sn)))
        for i, ch in enumerate(self.outputs):
            pend = _b(self.pend[i])
            vp_i = land(inp.vp, pend)
            changed |= ch.drive_vp(vp_i)
            if vp_i == 1:
                payload = inp.data
                if self.branch_data is not None:
                    payload = self.branch_data(i, payload)
                ch.put_data(payload)
            completed = land(vp_i, lor(lnot(ch.sp), ch.vn))
            done.append(lor(lnot(pend), completed))
            # I gate: never stop an anti-token that annihilates our copy.
            changed |= ch.drive_sn(land(lnot(moved), lnot(vp_i)))
        all_done = land(*done)
        changed |= inp.drive_sp(land(lnot(all_done), lnot(vn_in)))
        return changed

    def commit(self) -> None:
        inp = self.input
        if inp.vp == 1:
            consumed = inp.sp == 0  # all copies completed this cycle
            if consumed:
                self.pend = [1] * len(self.outputs)
            else:
                for i, ch in enumerate(self.outputs):
                    completed = ch.vp == 1 and (ch.sp == 0 or ch.vn == 1)
                    if completed:
                        self.pend[i] = 0
        # With no token in flight every pend flag is (and stays) 1.


class LazyFork(Controller):
    """A non-eager fork: all branches must transfer in the same cycle.

    Provided for comparison experiments.  Beware: lazy forks create
    combinational dependencies between the stop signals of sibling
    branches and can produce genuine combinational cycles in netlists
    that eager forks handle fine; the network simulator will report an
    unresolved fixed point in that case.
    """

    def __init__(self, name: str, input: Channel, outputs: Sequence[Channel]):
        super().__init__(name)
        self.input = input
        self.outputs = list(outputs)

    def channels(self) -> Sequence[Channel]:
        return (self.input, *self.outputs)

    def evaluate(self) -> bool:
        changed = False
        inp = self.input
        anti_all = land(*[ch.vn for ch in self.outputs])
        # A lazy fork is always at a fresh token boundary (no pending
        # state), so the wave gate reduces to anti_all; see EagerFork
        # for the state-gated variant.
        vn_in = anti_all
        changed |= inp.drive_vn(vn_in)
        moved = land(vn_in, lor(inp.vp, lnot(inp.sn)))
        stops = [ch.sp for ch in self.outputs]
        for i, ch in enumerate(self.outputs):
            others = [s for j, s in enumerate(stops) if j != i]
            kill_ok = ch.vn  # a branch anti-token always completes a copy
            vp_i = land(inp.vp, lor(land(*[lnot(s) for s in others]), kill_ok))
            changed |= ch.drive_vp(vp_i)
            if vp_i == 1:
                ch.put_data(inp.data)
            changed |= ch.drive_sn(land(lnot(moved), lnot(vp_i)))
        no_stop = land(*[lor(lnot(ch.sp), ch.vn) for ch in self.outputs])
        changed |= inp.drive_sp(land(lnot(land(inp.vp, no_stop)), lnot(vn_in)))
        return changed


# ----------------------------------------------------------------------
# Combinational function block (control-transparent)
# ----------------------------------------------------------------------
class Pipe(Controller):
    """A combinational functional block: control wires pass through.

    The elastic control layer of a single-input single-output block is
    just a wire (Sect. 6: join/fork components are omitted for blocks
    with one input or output); only the payload is transformed.
    """

    def __init__(
        self,
        name: str,
        left: Channel,
        right: Channel,
        func: Optional[Callable[[object], object]] = None,
    ):
        super().__init__(name)
        self.left = left
        self.right = right
        self.func = func if func is not None else (lambda value: value)

    def channels(self) -> Sequence[Channel]:
        return (self.left, self.right)

    def evaluate(self) -> bool:
        left, right = self.left, self.right
        changed = right.drive_vp(left.vp)
        if left.vp == 1:
            right.put_data(self.func(left.data))
        changed |= right.drive_sn(left.sn)
        changed |= left.drive_sp(right.sp)
        changed |= left.drive_vn(right.vn)
        return changed


# ----------------------------------------------------------------------
# Passive anti-token interface (Fig. 7(a))
# ----------------------------------------------------------------------
class PassiveAntiToken(Controller):
    """Boundary between an anti-token region and a token-only region.

    Upstream of this interface no ``{V−, S−}`` wires exist.  The
    interface stops anti-token propagation with ``S− = not V+`` (the
    inverter of Fig. 7(a)): when a token is present the anti-token
    annihilates it (the upstream region simply sees a transfer); when
    none is present the anti-token waits passively on the downstream
    channel.
    """

    def __init__(self, name: str, up: Channel, down: Channel):
        super().__init__(name)
        self.up = up
        self.down = down

    def channels(self) -> Sequence[Channel]:
        return (self.up, self.down)

    def evaluate(self) -> bool:
        changed = False
        up, down = self.up, self.down
        changed |= down.drive_vp(up.vp)
        if up.vp == 1:
            down.put_data(up.data)
        changed |= down.drive_sn(lnot(up.vp))
        # Upstream never sees anti-tokens; a kill looks like a transfer.
        changed |= up.drive_vn(0)
        changed |= up.drive_sp(land(down.sp, lnot(down.vn)))
        return changed


# ----------------------------------------------------------------------
# Variable-latency controller (Fig. 7(b))
# ----------------------------------------------------------------------
class VariableLatency(Controller):
    """Controller for a variable-latency functional unit.

    Implements the three-wire (go/done/ack) handshake of Fig. 7(b) at
    the cycle level: ``go`` corresponds to accepting an input token,
    ``done`` to the unit finishing after a sampled latency, and ``ack``
    to the output transfer (or kill).  While the unit is empty,
    anti-tokens pass backwards combinationally -- there is no latch in
    the controller, so (as the paper notes for the M1/M2 channels)
    anti-tokens are never killed *inside* it, only at buffer
    boundaries.
    """

    IDLE, BUSY, DONE = range(3)

    def __init__(
        self,
        name: str,
        left: Channel,
        right: Channel,
        latency: Callable[[random.Random], int],
        func: Optional[Callable[[object], object]] = None,
        rng: Optional[random.Random] = None,
    ):
        super().__init__(name)
        self.left = left
        self.right = right
        self.latency = latency
        self.func = func if func is not None else (lambda value: value)
        self.rng = rng if rng is not None else random.Random(0)
        self.state = self.IDLE
        self.remaining = 0
        self.payload: object = None
        self.result: object = None
        self.go_count = 0
        self.done_count = 0
        self.aborted = 0

    def channels(self) -> Sequence[Channel]:
        return (self.left, self.right)

    def evaluate(self) -> bool:
        changed = False
        left, right = self.left, self.right
        idle = self.state == self.IDLE
        done = self.state == self.DONE
        busy = self.state == self.BUSY

        changed |= right.drive_vp(_b(done))
        if done:
            right.put_data(self.result)
        if busy:
            # An anti-token may preempt the computation in flight (the
            # counterflow pipelining of the paper's refs [1, 2]): the
            # anti-token is absorbed and the operation aborted.
            changed |= right.drive_sn(0)
        elif done:
            changed |= right.drive_sn(0)
        else:  # idle: pass the anti-token through combinationally
            changed |= right.drive_sn(land(left.sn, lnot(left.vp)))
        changed |= left.drive_vn(land(right.vn, _b(idle)))
        if idle:
            changed |= left.drive_sp(0)
        elif busy:
            changed |= left.drive_sp(1)
        else:
            # done: accept a new operand in the cycle the result departs
            # (ack = output transfer or kill), like back-to-back go/ack
            # handshakes on the Fig. 7(b) interface.
            released = lor(lnot(right.sp), right.vn)
            changed |= left.drive_sp(lnot(released))
        return changed

    def _start(self, payload: object) -> None:
        self.payload = payload
        lat = self.latency(self.rng)
        if lat < 1:
            raise ValueError("latency must be >= 1")
        self.go_count += 1
        if lat == 1:
            self.state = self.DONE
            self.result = self.func(self.payload)
            self.done_count += 1
        else:
            self.state = self.BUSY
            self.remaining = lat - 1

    def commit(self) -> None:
        left, right = self.left, self.right
        if self.state == self.IDLE:
            if left.pos_transfer:
                self._start(left.data)
            # left.kill: the token died on the input channel; stay idle.
        elif self.state == self.BUSY:
            if right.neg_transfer:
                # Preempted: the anti-token annihilates the operand in
                # flight and the unit is flushed.
                self.state = self.IDLE
                self.payload = None
                self.aborted += 1
            else:
                self.remaining -= 1
                if self.remaining == 0:
                    self.state = self.DONE
                    self.result = self.func(self.payload)
                    self.done_count += 1
        elif self.state == self.DONE:
            if right.pos_transfer or right.kill:
                self.state = self.IDLE
                self.result = None
                if left.pos_transfer:
                    self._start(left.data)


# ----------------------------------------------------------------------
# Environment
# ----------------------------------------------------------------------
class Source(Controller):
    """Environment producer on a ``{V+, S+}`` interface.

    Offers a token with probability ``p_valid`` each cycle and honours
    SELF persistence: a retried token is re-offered with the same
    payload until it transfers (or is killed, if the channel carries
    anti-tokens -- the source itself behaves like a passive interface,
    ``S− = not V+``).
    """

    def __init__(
        self,
        name: str,
        output: Channel,
        data_fn: Optional[Callable[[int], object]] = None,
        p_valid: float = 1.0,
        rng: Optional[random.Random] = None,
    ):
        super().__init__(name)
        self.output = output
        self.data_fn = data_fn if data_fn is not None else (lambda n: n)
        self.p_valid = p_valid
        self.rng = rng if rng is not None else random.Random(0)
        self.seq = 0
        self.pending = False
        self.current: object = None
        self.offer = False
        self._decided = False
        self.sent = 0
        self.killed = 0

    def channels(self) -> Sequence[Channel]:
        return (self.output,)

    def evaluate(self) -> bool:
        out = self.output
        if not self.pending and not self._decided:
            # Decide once per cycle whether to offer a fresh token.
            self._decided = True
            if self.p_valid >= 1.0 or self.rng.random() < self.p_valid:
                self.current = self.data_fn(self.seq)
                self.offer = True
        valid = self.pending or self.offer
        changed = out.drive_vp(_b(valid))
        if valid:
            out.put_data(self.current)
        changed |= out.drive_sn(lnot(_b(valid)))
        return changed

    def commit(self) -> None:
        out = self.output
        if out.vp == 1:
            if out.kill:
                self.killed += 1
                self.seq += 1
                self.pending = False
            elif out.pos_transfer:
                self.sent += 1
                self.seq += 1
                self.pending = False
            else:  # retry: persistence
                self.pending = True
        self.offer = False
        self._decided = False


class Sink(Controller):
    """Environment consumer, optionally stalling and/or killing.

    With ``p_stop == p_kill == 0`` this is the always-ready consumer of
    the Table 1 experiments.  With nonzero probabilities it becomes the
    non-deterministic consumer of the Fig. 8(b) verification set-up:
    each cycle it either accepts, stalls, or emits an anti-token to
    cancel data inside the netlist.  Anti-token persistence (Retry−) is
    honoured.
    """

    def __init__(
        self,
        name: str,
        input: Channel,
        p_stop: float = 0.0,
        p_kill: float = 0.0,
        on_data: Optional[Callable[[object], None]] = None,
        rng: Optional[random.Random] = None,
    ):
        super().__init__(name)
        if p_stop + p_kill > 1.0 + 1e-12:
            raise ValueError("p_stop + p_kill must be <= 1")
        self.input = input
        self.p_stop = p_stop
        self.p_kill = p_kill
        self.on_data = on_data
        self.rng = rng if rng is not None else random.Random(0)
        self.pending_anti = False
        self._action: Optional[str] = None
        self.received: List[object] = []
        self.kills_sent = 0

    def channels(self) -> Sequence[Channel]:
        return (self.input,)

    def evaluate(self) -> bool:
        ch = self.input
        if self._action is None:
            if self.pending_anti:
                self._action = "kill"
            else:
                r = self.rng.random()
                if r < self.p_kill:
                    self._action = "kill"
                elif r < self.p_kill + self.p_stop:
                    self._action = "stall"
                else:
                    self._action = "accept"
        action = self._action
        changed = ch.drive_vn(_b(action == "kill"))
        changed |= ch.drive_sp(_b(action == "stall"))
        return changed

    def commit(self) -> None:
        ch = self.input
        if ch.pos_transfer:
            self.received.append(ch.data)
            if self.on_data is not None:
                self.on_data(ch.data)
        if self._action == "kill":
            if ch.kill or ch.neg_transfer:
                self.kills_sent += 1
                self.pending_anti = False
            else:  # Retry-: hold the anti-token
                self.pending_anti = True
        self._action = None


# ----------------------------------------------------------------------
# Network simulator
# ----------------------------------------------------------------------
class ElasticNetwork:
    """Fixed-point simulator for a network of elastic controllers.

    Per cycle: reset all channel wires to X, run ``evaluate`` over all
    controllers until no wire changes (the ternary equations are
    monotone, so at most ``4 * |channels|`` sweeps suffice), check that
    every wire settled, classify/record every channel, then ``commit``
    all controllers.
    """

    def __init__(self, name: str = "network"):
        self.name = name
        self.controllers: List[Controller] = []
        self.channels: Dict[str, Channel] = {}
        self.cycle = 0
        self._saboteurs: List[Callable[[int, Dict[str, Channel]], None]] = []
        #: post-commit probes ``fn(net)`` run once per settled cycle
        #: (wires are still valid, ``net.cycle`` is the cycle just
        #: simulated).  Empty by default -- the common untraced path
        #: pays one truthiness check per cycle.  :mod:`repro.obs` uses
        #: this for occupancy sampling and metrics collection.
        self.probes: List[Callable[["ElasticNetwork"], None]] = []

    def add_saboteur(
        self, saboteur: Callable[[int, Dict[str, Channel]], None]
    ) -> Callable[[int, Dict[str, Channel]], None]:
        """Register a fault-injection hook ``fn(cycle, channels)``.

        Saboteurs run after the network settles but *before* channels
        are classified and controllers commit, so a corrupted wire is
        what every monitor and every controller's commit phase sees --
        the behavioural analogue of a glitch on the physical wire.  See
        :mod:`repro.faults.models` for the stock fault models.
        """
        self._saboteurs.append(saboteur)
        return saboteur

    def add_probe(
        self, probe: Callable[["ElasticNetwork"], None]
    ) -> Callable[["ElasticNetwork"], None]:
        """Register a post-commit probe ``fn(net)`` (see :attr:`probes`).

        Probes run once per settled cycle with the channel wires still
        valid and ``net.cycle`` naming the cycle just simulated -- the
        attachment point for occupancy sampling, metrics collection and
        the :class:`~repro.resilience.NetworkStallWatchdog`.
        """
        self.probes.append(probe)
        return probe

    def add_channel(self, name: str, monitor: bool = True, check_data: bool = True) -> Channel:
        """Create and register a channel."""
        if name in self.channels:
            raise ValueError(f"duplicate channel {name!r}")
        ch = Channel(name, monitor=monitor, check_data=check_data)
        self.channels[name] = ch
        return ch

    def add(self, controller: Controller) -> Controller:
        """Register a controller (its channels must already be added)."""
        for ch in controller.channels():
            if self.channels.get(ch.name) is not ch:
                raise ValueError(
                    f"{controller.name}: channel {ch.name!r} not registered"
                )
        self.controllers.append(controller)
        return controller

    def step(self) -> None:
        """Simulate one clock cycle."""
        for ch in self.channels.values():
            ch.begin_cycle()
        max_sweeps = 4 * len(self.channels) + 4
        for _ in range(max_sweeps):
            changed = False
            for ctrl in self.controllers:
                changed |= ctrl.evaluate()
            if not changed:
                break
        else:
            raise ProtocolViolation(f"{self.name}: fixed point not reached")
        for saboteur in self._saboteurs:
            saboteur(self.cycle, self.channels)
        for ch in self.channels.values():
            ch.finish_cycle()
        for ctrl in self.controllers:
            ctrl.commit()
        if self.probes:
            for probe in self.probes:
                probe(self)
        self.cycle += 1

    def run(self, cycles: int) -> None:
        """Simulate ``cycles`` clock cycles."""
        for _ in range(cycles):
            self.step()

    def throughput(self, channel: str) -> float:
        """The Th of one channel (transfers + kills per cycle)."""
        return self.channels[channel].stats.throughput

    def report(self) -> str:
        """Human-readable per-channel summary."""
        lines = [f"network {self.name}: {self.cycle} cycles"]
        for name in sorted(self.channels):
            lines.append(f"  {name:24s} {self.channels[name].stats}")
        return "\n".join(lines)
