"""Cross-checking the gate-level and behavioural controller layers.

The gate netlists of :mod:`repro.elastic.gates` are meant to be exact
transcriptions of the behavioural controllers.  This module drives both
implementations of one controller with an *identical*, randomly chosen
but protocol-legal environment and compares every controller-driven
channel wire cycle by cycle.

The environment respects the SELF rules on each channel side it plays:

* producer side (drives ``V+``/``S−``): persistence of a retried token,
  and the invariant ``V+ -> not S−``;
* consumer side (drives ``S+``/``V−``): persistence of a retried
  anti-token, and the invariant ``V− -> not S+``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.elastic.behavioral import Controller, ElasticNetwork
from repro.elastic.channel import Channel
from repro.elastic.gates import GateChannel
from repro.rtl.batchsim import BatchSimulator
from repro.rtl.netlist import Netlist
from repro.rtl.simulator import TwoPhaseSimulator


class ScriptedEnd(Controller):
    """Drives one side of a channel with externally provided values."""

    def __init__(self, name: str, channel: Channel, side: str):
        super().__init__(name)
        if side not in ("producer", "consumer"):
            raise ValueError("side must be 'producer' or 'consumer'")
        self.channel = channel
        self.side = side
        self.values: Tuple[int, int] = (0, 0)
        self.data: object = None

    def channels(self) -> Sequence[Channel]:
        return (self.channel,)

    def set(self, a: int, b: int, data: object = None) -> None:
        """Producer: (vp, sn).  Consumer: (sp, vn)."""
        self.values = (a, b)
        self.data = data

    def evaluate(self) -> bool:
        ch = self.channel
        a, b = self.values
        if self.side == "producer":
            changed = ch.drive_vp(a)
            if a:
                ch.put_data(self.data)
            changed |= ch.drive_sn(b)
        else:
            changed = ch.drive_sp(a)
            changed |= ch.drive_vn(b)
        return changed


@dataclass
class _EnvSide:
    """Protocol-legal random wire generator for one channel side."""

    side: str  # which side the *environment* plays
    rng: random.Random
    p_valid: float = 0.6
    p_stop: float = 0.3
    p_kill: float = 0.25
    pend_pos: bool = False
    pend_neg: bool = False

    def choose(self) -> Tuple[int, int]:
        """Values for this cycle: producer (vp, sn) / consumer (sp, vn)."""
        if self.side == "producer":
            vp = 1 if (self.pend_pos or self.rng.random() < self.p_valid) else 0
            sn = 0 if vp else (1 if self.rng.random() < self.p_stop else 0)
            return vp, sn
        vn = 1 if (self.pend_neg or self.rng.random() < self.p_kill) else 0
        sp = 0 if vn else (1 if self.rng.random() < self.p_stop else 0)
        return sp, vn

    def observe(self, vp: int, sp: int, vn: int, sn: int) -> None:
        """Update persistence obligations from the settled channel."""
        if self.side == "producer":
            self.pend_pos = bool(vp and sp and not vn)
        else:
            self.pend_neg = bool(vn and sn and not vp)


@dataclass
class CrossCheckMismatch(AssertionError):
    """The two layers disagreed on a wire value.

    Carries the run's ``seed`` so any reported mismatch can be replayed
    verbatim: the same seed regenerates the same environment choices.
    """

    cycle: int
    wire: str
    behavioral: int
    gate: object
    seed: int = 0

    def __str__(self) -> str:
        return (
            f"cycle {self.cycle}: wire {self.wire} behavioral="
            f"{self.behavioral} gate={self.gate!r} (replay with seed="
            f"{self.seed})"
        )


class ControllerCrossCheck:
    """Drive a behavioural controller and its gate twin in lock-step.

    Args:
        controller: the behavioural controller under test; its channels
            must all belong to ``channels``.
        channels: behavioural channels, each paired with the gate-level
            channel of the same index and a role: which *two* wires of
            that channel the controller drives (``"producer"``,
            ``"consumer"`` or ``"both"`` for internal use).
        netlist: the gate netlist containing the twin; environment-side
            wires of every channel must be primary inputs.
    """

    def __init__(
        self,
        controller: Controller,
        channels: Sequence[Tuple[Channel, GateChannel, str]],
        netlist: Netlist,
        seed: int = 0,
        p_kill: float = 0.25,
    ):
        self.controller = controller
        self.netlist = netlist
        #: The seed reproducing this exact run (quoted in mismatches).
        self.seed = seed
        self.sim = TwoPhaseSimulator(netlist)
        self.net = ElasticNetwork("crosscheck")
        self.triples = list(channels)
        self.envs: List[_EnvSide] = []
        self.ends: List[ScriptedEnd] = []

        for ch, gch, ctrl_role in self.triples:
            if self.net.channels.get(ch.name) is not ch:
                self.net.channels[ch.name] = ch
            env_role = "consumer" if ctrl_role == "producer" else "producer"
            # Derive each channel's stream from (seed, channel name), so
            # a given channel sees identical stimulus regardless of how
            # many other channels the harness happens to wrap.
            env = _EnvSide(side=env_role,
                           rng=random.Random(f"{seed}:{ch.name}"))
            if env_role == "consumer":
                env.p_kill = p_kill
            end = ScriptedEnd(f"env.{ch.name}", ch, env_role)
            self.envs.append(env)
            self.ends.append(end)
            self.net.add(end)
        self.net.add(controller)
        self.cycle = 0

    def _gate_inputs(self, choices: List[Tuple[int, int]]) -> Dict[str, int]:
        inputs: Dict[str, int] = {}
        for (ch, gch, ctrl_role), (a, b) in zip(self.triples, choices):
            if ctrl_role == "producer":  # env is consumer: drives sp, vn
                inputs[gch.sp] = a
                inputs[gch.vn] = b
            else:  # env is producer: drives vp, sn
                inputs[gch.vp] = a
                inputs[gch.sn] = b
        return inputs

    def step(self) -> None:
        """One lock-step cycle; raises on any wire disagreement."""
        choices = [env.choose() for env in self.envs]
        for end, choice in zip(self.ends, choices):
            end.set(*choice)
        self.net.step()
        gate_values = self.sim.cycle(self._gate_inputs(choices))

        for ch, gch, ctrl_role in self.triples:
            if ctrl_role == "producer":
                pairs = [(ch.vp, gch.vp), (ch.sn, gch.sn)]
            else:
                pairs = [(ch.sp, gch.sp), (ch.vn, gch.vn)]
            for want, wire in pairs:
                got = gate_values.get(wire)
                if got != want:
                    raise CrossCheckMismatch(
                        self.cycle, wire, want, got, seed=self.seed
                    )
        for env, (ch, _, _) in zip(self.envs, self.triples):
            env.observe(ch.vp, ch.sp, ch.vn, ch.sn)
        self.cycle += 1

    def run(self, cycles: int) -> None:
        for _ in range(cycles):
            self.step()


class BatchedCrossCheck:
    """Many seeded cross-checks against one bit-parallel gate twin.

    ``factory(seed)`` must build a fresh :class:`ControllerCrossCheck`
    (its own behavioural network and environments); each one becomes a
    lane of a shared :class:`~repro.rtl.batchsim.BatchSimulator`, so the
    gate netlist is evaluated word-parallel across every seed while the
    behavioural replicas advance scalar, in lock-step.  Because lane
    environments draw from ``random.Random(f"{seed}:{channel}")``
    exactly like the scalar harness, any mismatch -- reported with the
    offending lane's seed -- replays verbatim on a plain
    ``factory(seed).run(...)``.

    ``backend="compiled"`` swaps the gate twin for a
    :class:`~repro.codegen.sim.CompiledSimulator` restricted to the
    compared wires (``cache`` names its build-cache directory); the
    lock-step comparison itself is backend-agnostic.
    """

    def __init__(
        self,
        factory,
        seeds: Sequence[int],
        backend: str = "batch",
        cache=None,
    ):
        seeds = list(seeds)
        if not 1 <= len(seeds) <= 64:
            raise ValueError("need between 1 and 64 seeds per batch")
        self.seeds = seeds
        #: One scalar harness per lane; only its behavioural half runs.
        self.harnesses: List[ControllerCrossCheck] = [
            factory(seed) for seed in seeds
        ]
        self.netlist = self.harnesses[0].netlist
        if backend == "compiled":
            from repro.codegen.sim import CompiledSimulator

            compared = set()
            for harness in self.harnesses:
                for _ch, gch, ctrl_role in harness.triples:
                    if ctrl_role == "producer":
                        compared.update((gch.vp, gch.sn))
                    else:
                        compared.update((gch.sp, gch.vn))
            self.sim = CompiledSimulator(
                self.netlist, lanes=len(seeds),
                hooks=frozenset(), observe=frozenset(compared),
                cache=cache,
            )
        elif backend == "batch":
            self.sim = BatchSimulator(self.netlist, lanes=len(seeds))
        else:
            raise ValueError(
                f"unknown backend {backend!r}; pick 'batch' or 'compiled'"
            )
        # Comparison plan per lane: the controller-driven gate wires and
        # the behavioural channel each must be read from, pre-resolved
        # to plane-array slots.
        self._compare: List[List[Tuple[Channel, str, str, int]]] = []
        for harness in self.harnesses:
            plan: List[Tuple[Channel, str, str, int]] = []
            for ch, gch, ctrl_role in harness.triples:
                if ctrl_role == "producer":
                    wires = (("vp", gch.vp), ("sn", gch.sn))
                else:
                    wires = (("sp", gch.sp), ("vn", gch.vn))
                for attr, wire in wires:
                    plan.append((ch, attr, wire, self.sim.slot(wire)))
            self._compare.append(plan)
        self.cycle = 0

    def step(self) -> None:
        """One lock-step cycle of every lane; raises on disagreement."""
        packed: Dict[str, List[int]] = {}
        for lane, harness in enumerate(self.harnesses):
            choices = [env.choose() for env in harness.envs]
            for end, choice in zip(harness.ends, choices):
                end.set(*choice)
            harness.net.step()
            bit = 1 << lane
            for name, value in harness._gate_inputs(choices).items():
                vk = packed.setdefault(name, [0, 0])
                vk[1] |= bit
                if value:
                    vk[0] |= bit
        self.sim.cycle({name: (vk[0], vk[1]) for name, vk in packed.items()})

        v, k = self.sim.value_planes, self.sim.known_planes
        for lane, (harness, plan) in enumerate(
            zip(self.harnesses, self._compare)
        ):
            bit = 1 << lane
            for ch, attr, wire, slot in plan:
                want = getattr(ch, attr)
                got = (1 if v[slot] & bit else 0) if k[slot] & bit else None
                if got != want:
                    raise CrossCheckMismatch(
                        self.cycle, wire, want,
                        self.sim.lane_value(wire, lane),
                        seed=harness.seed,
                    )
            for env, (ch, _, _) in zip(harness.envs, harness.triples):
                env.observe(ch.vp, ch.sp, ch.vn, ch.sn)
            harness.cycle += 1
        self.cycle += 1

    def run(self, cycles: int) -> None:
        for _ in range(cycles):
            self.step()
