"""The SELF protocol and its dual (anti-token) extension.

Section 3 of the paper: a channel carries ``Valid`` (V) and ``Stop`` (S)
and is, each cycle, in one of three states:

* **Transfer (T)**: ``V and not S`` -- data moves.
* **Idle (I)**: ``not V`` -- no data offered.
* **Retry (R)**: ``V and S`` -- data offered but not accepted; the
  sender must hold it (persistence), so the observable language of a
  channel is ``(I* R* T)*``.

Section 4 adds the symmetric negative flow: a *dual* channel carries
``{V+, S+, V−, S−}``.  Events:

* **positive transfer**: ``V+ and not S+ and not V−``
* **negative transfer**: ``V− and not S− and not V+``
* **kill**: ``V+ and V−`` -- token and anti-token annihilate.

and the channel invariants of equation (2)::

    not (V− and S+)      -- cannot kill a token and stop it
    not (V+ and S−)      -- dual for anti-tokens

The throughput of a channel is the sum of the three event rates, which
by the repetitive behaviour of SCDMGs is identical on every channel of a
strongly connected system.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple


class ChannelState(enum.Enum):
    """State of a (positive) SELF channel in one cycle."""

    TRANSFER = "T"
    IDLE = "I"
    RETRY = "R"


class DualChannelEvent(enum.Enum):
    """Event observed on a dual channel in one cycle."""

    POSITIVE_TRANSFER = "+"
    NEGATIVE_TRANSFER = "-"
    KILL = "±"
    RETRY_POS = "R+"
    RETRY_NEG = "R-"
    IDLE = "I"


def classify(valid: int, stop: int) -> ChannelState:
    """Classify a positive-only channel cycle (Fig. 2)."""
    if not valid:
        return ChannelState.IDLE
    return ChannelState.RETRY if stop else ChannelState.TRANSFER


def invariant_holds(vp: int, sp: int, vn: int, sn: int) -> bool:
    """The equation (2) invariants of a dual channel."""
    return not (vn and sp) and not (vp and sn)


def classify_dual(vp: int, sp: int, vn: int, sn: int) -> DualChannelEvent:
    """Classify one cycle of a dual channel.

    Raises ``ProtocolViolation`` if the invariants of equation (2) are
    broken: classification would be ambiguous otherwise.
    """
    if not invariant_holds(vp, sp, vn, sn):
        raise ProtocolViolation(
            f"invariant (2) violated: V+={vp} S+={sp} V-={vn} S-={sn}"
        )
    if vp and vn:
        return DualChannelEvent.KILL
    if vp and not sp:
        return DualChannelEvent.POSITIVE_TRANSFER
    if vp and sp:
        return DualChannelEvent.RETRY_POS
    if vn and not sn:
        return DualChannelEvent.NEGATIVE_TRANSFER
    if vn and sn:
        return DualChannelEvent.RETRY_NEG
    return DualChannelEvent.IDLE


class ProtocolViolation(AssertionError):
    """A SELF protocol rule was broken on a channel."""


@dataclass
class ProtocolMonitor:
    """Runtime monitor for one dual channel.

    Checks, cycle by cycle:

    * the invariants of equation (2);
    * **persistence** of the positive flow: after Retry+ the sender must
      keep ``V+`` asserted with the *same data* until transfer or kill
      (this is exactly the ``(I*R*T)*`` language of Fig. 2);
    * **persistence** of the negative flow (Retry− keeps ``V−``).

    Attach one monitor per channel and feed it each settled cycle.
    """

    name: str = "channel"
    check_data: bool = True
    _pending_pos: bool = field(default=False, repr=False)
    _pending_data: object = field(default=None, repr=False)
    _pending_neg: bool = field(default=False, repr=False)
    history: List[DualChannelEvent] = field(default_factory=list, repr=False)

    def observe(
        self, vp: int, sp: int, vn: int, sn: int, data: object = None
    ) -> DualChannelEvent:
        """Check one cycle; returns its classification."""
        event = classify_dual(vp, sp, vn, sn)

        if self._pending_pos and not vp:
            raise ProtocolViolation(
                f"{self.name}: V+ dropped during Retry+ (persistence broken)"
            )
        if (
            self._pending_pos
            and vp
            and self.check_data
            and data != self._pending_data
        ):
            raise ProtocolViolation(
                f"{self.name}: data changed during Retry+ "
                f"({self._pending_data!r} -> {data!r})"
            )
        if self._pending_neg and not vn:
            raise ProtocolViolation(
                f"{self.name}: V- dropped during Retry- (persistence broken)"
            )

        self._pending_pos = event is DualChannelEvent.RETRY_POS
        self._pending_data = data if self._pending_pos else None
        self._pending_neg = event is DualChannelEvent.RETRY_NEG
        self.history.append(event)
        return event

    def language_ok(self) -> bool:
        """Whether the observed positive trace is a prefix of (I*R*T)*.

        Equivalent to never having seen a Retry followed by Idle, which
        :meth:`observe` already raises on; provided for explicit checks
        over recorded histories.
        """
        pending = False
        for ev in self.history:
            pos_valid = ev in (
                DualChannelEvent.POSITIVE_TRANSFER,
                DualChannelEvent.RETRY_POS,
                DualChannelEvent.KILL,
            )
            if pending and not pos_valid:
                return False
            pending = ev is DualChannelEvent.RETRY_POS
        return True

    def throughput(self) -> float:
        """Transfers + kills per observed cycle (the paper's Th metric)."""
        if not self.history:
            return 0.0
        moving = sum(
            1
            for ev in self.history
            if ev
            in (
                DualChannelEvent.POSITIVE_TRANSFER,
                DualChannelEvent.NEGATIVE_TRANSFER,
                DualChannelEvent.KILL,
            )
        )
        return moving / len(self.history)
