"""JSON-able models of :class:`~repro.synthesis.spec.SystemSpec`.

A :class:`SystemSpec` holds callables (data functions, EE objects, gate
EE builders, latency samplers) and therefore cannot be serialised,
diffed, or shrunk structurally.  The fuzzer works on :class:`SpecModel`
instead: a plain-data mirror whose attributes come from small symbolic
palettes --

* ``ee``: ``"thr:<k>"`` -- a k-of-n :class:`~repro.elastic.ee.
  ThresholdEE` plus its gate twin (a sum-of-products over the input
  valid wires; data-free, positive unate, so it is realisable without
  data bits on the channels);
* ``latency``: ``"fixed:<n>"`` or ``"uniform:<lo>:<hi>"`` -- a
  variable-latency sampler over the elaboration's seeded RNG.

:func:`SpecModel.build` materialises the real :class:`SystemSpec`;
:meth:`SpecModel.to_dict` / :meth:`SpecModel.from_dict` round-trip
through JSON byte-stably, which is what makes corpus entries replayable
and spec-level ddmin candidates comparable.  Malformed models raise
:class:`InvalidSpecModel` -- never a silent elaboration.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.elastic.ee import ThresholdEE
from repro.synthesis.spec import SystemSpec

__all__ = [
    "BlockModel",
    "ConnModel",
    "InvalidSpecModel",
    "RegisterModel",
    "SinkModel",
    "SourceModel",
    "SpecModel",
]

#: An endpoint as plain data: ``(kind, name, port)``.
EndpointModel = Tuple[str, str, str]


class InvalidSpecModel(ValueError):
    """The model cannot be materialised into a valid ``SystemSpec``."""


@dataclass
class SourceModel:
    name: str
    p_valid: float = 1.0

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "p_valid": self.p_valid}


@dataclass
class SinkModel:
    name: str
    p_stop: float = 0.0
    p_kill: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "p_stop": self.p_stop,
                "p_kill": self.p_kill}


@dataclass
class BlockModel:
    name: str
    n_inputs: int = 1
    n_outputs: int = 1
    #: ``"thr:<k>"`` for a k-of-n early join, None for a lazy one
    ee: Optional[str] = None
    #: ``"fixed:<n>"`` / ``"uniform:<lo>:<hi>"`` for a VL unit
    latency: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "n_inputs": self.n_inputs,
            "n_outputs": self.n_outputs,
            "ee": self.ee,
            "latency": self.latency,
        }


@dataclass
class RegisterModel:
    name: str
    capacity: int = 2
    initial_tokens: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "capacity": self.capacity,
                "initial_tokens": self.initial_tokens}


@dataclass
class ConnModel:
    src: EndpointModel
    dst: EndpointModel
    passive: bool = False

    def to_dict(self) -> Dict[str, object]:
        return {"src": list(self.src), "dst": list(self.dst),
                "passive": self.passive}


@dataclass
class SpecModel:
    """A plain-data system description (see module docstring)."""

    name: str
    sources: List[SourceModel] = field(default_factory=list)
    sinks: List[SinkModel] = field(default_factory=list)
    blocks: List[BlockModel] = field(default_factory=list)
    registers: List[RegisterModel] = field(default_factory=list)
    connections: List[ConnModel] = field(default_factory=list)

    # -- serialisation -------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "sources": [s.to_dict() for s in self.sources],
            "sinks": [s.to_dict() for s in self.sinks],
            "blocks": [b.to_dict() for b in self.blocks],
            "registers": [r.to_dict() for r in self.registers],
            "connections": [c.to_dict() for c in self.connections],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "SpecModel":
        try:
            return SpecModel(
                name=str(data["name"]),
                sources=[SourceModel(s["name"], float(s.get("p_valid", 1.0)))
                         for s in data.get("sources", ())],
                sinks=[SinkModel(s["name"], float(s.get("p_stop", 0.0)),
                                 float(s.get("p_kill", 0.0)))
                       for s in data.get("sinks", ())],
                blocks=[BlockModel(
                    b["name"],
                    n_inputs=int(b.get("n_inputs", 1)),
                    n_outputs=int(b.get("n_outputs", 1)),
                    ee=b.get("ee"),
                    latency=b.get("latency"),
                ) for b in data.get("blocks", ())],
                registers=[RegisterModel(
                    r["name"],
                    capacity=int(r.get("capacity", 2)),
                    initial_tokens=int(r.get("initial_tokens", 0)),
                ) for r in data.get("registers", ())],
                connections=[ConnModel(
                    tuple(c["src"]), tuple(c["dst"]),
                    passive=bool(c.get("passive", False)),
                ) for c in data.get("connections", ())],
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise InvalidSpecModel(f"malformed spec model: {exc}") from exc

    # -- introspection -------------------------------------------------
    def clone(self) -> "SpecModel":
        return SpecModel.from_dict(self.to_dict())

    def component_names(self) -> Dict[str, str]:
        """``name -> kind`` over every declared component."""
        names: Dict[str, str] = {}
        for kind, items in (("source", self.sources), ("sink", self.sinks),
                            ("block", self.blocks),
                            ("register", self.registers)):
            for item in items:
                names[item.name] = kind
        return names

    # -- materialisation -----------------------------------------------
    def build(self) -> SystemSpec:
        """The real :class:`SystemSpec`, or :class:`InvalidSpecModel`.

        Every declaration error (bad EE token, EE arity mismatch,
        latency on a multi-port block, dangling/duplicated ports) is
        re-raised as the typed :class:`InvalidSpecModel`, so callers
        never elaborate a half-built spec silently.
        """
        if not self.sources and not self.sinks and not self.blocks \
                and not self.registers:
            raise InvalidSpecModel(f"{self.name}: empty model")
        spec = SystemSpec(self.name)
        try:
            for s in self.sources:
                spec.add_source(s.name, p_valid=s.p_valid)
            for s in self.sinks:
                spec.add_sink(s.name, p_stop=s.p_stop, p_kill=s.p_kill)
            for b in self.blocks:
                ee = gate_ee = None
                if b.ee is not None:
                    ee, gate_ee = _parse_ee(b.ee, b.n_inputs, b.name)
                spec.add_block(
                    b.name,
                    n_inputs=b.n_inputs,
                    n_outputs=b.n_outputs,
                    ee=ee,
                    gate_ee=gate_ee,
                    latency=(_parse_latency(b.latency, b.name)
                             if b.latency is not None else None),
                )
            for r in self.registers:
                if r.capacity < 1:
                    raise InvalidSpecModel(
                        f"{r.name}: capacity must be >= 1, got {r.capacity}"
                    )
                spec.add_register(r.name, capacity=r.capacity,
                                  initial_tokens=r.initial_tokens)
            for c in self.connections:
                spec.connect(tuple(c.src), tuple(c.dst), passive=c.passive)
            spec.validate()
        except InvalidSpecModel:
            raise
        except (ValueError, KeyError) as exc:
            raise InvalidSpecModel(f"{self.name}: {exc}") from exc
        return spec


def _parse_ee(token: str, n_inputs: int, block: str):
    """``"thr:<k>"`` -> (behavioural EE, gate EE builder)."""
    kind, _, arg = token.partition(":")
    if kind != "thr":
        raise InvalidSpecModel(f"{block}: unknown EE palette entry {token!r}")
    try:
        k = int(arg)
    except ValueError:
        raise InvalidSpecModel(f"{block}: bad EE threshold in {token!r}")
    if not 1 <= k <= n_inputs:
        raise InvalidSpecModel(
            f"{block}: threshold {k} outside 1..{n_inputs}"
        )
    return ThresholdEE(k, n_inputs), _threshold_gate_ee(k)


def _threshold_gate_ee(k: int):
    """The gate twin of :class:`ThresholdEE`: OR of k-wide AND terms.

    Data-free and positive unate by construction, so it is a legal EE
    function on channels that carry no data wires.
    """

    def gate_ee(nl, vps: Sequence[str], datas) -> str:
        if k >= len(vps):
            return nl.AND(*vps)
        if k == 1:
            return nl.OR(*vps)
        terms = [nl.AND(*combo)
                 for combo in itertools.combinations(vps, k)]
        return nl.OR(*terms)

    return gate_ee


def _parse_latency(token: str, block: str):
    kind, _, rest = token.partition(":")
    try:
        if kind == "fixed":
            n = int(rest)
            if n < 1:
                raise ValueError(n)
            return lambda rng: n
        if kind == "uniform":
            lo_s, _, hi_s = rest.partition(":")
            lo, hi = int(lo_s), int(hi_s)
            if not 1 <= lo <= hi:
                raise ValueError((lo, hi))
            return lambda rng: rng.randint(lo, hi)
    except ValueError:
        pass
    raise InvalidSpecModel(f"{block}: unknown latency palette entry {token!r}")
