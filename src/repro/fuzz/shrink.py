"""Spec-level ddmin: shrink a failing model, re-repairing as it goes.

:mod:`repro.faults.shrink` minimises *trace-level* schedules -- lists
of injections with no structure between elements.  A system model is
different: removing a block leaves dangling ports, may open a deadlock
cycle, and can orphan whole subgraphs.  :func:`shrink_model` extends
the same ddmin loop to that domain by composing every removal with the
validity pass of :func:`~repro.fuzz.generate.repair_model`:

* candidates remove ever-smaller chunks of blocks/registers, bridging
  a removed 1-in/1-out component's producer to its consumer, and let
  the repair pass re-stub whatever is left dangling;
* stub chains the removals created (a repair source feeding straight
  into a repair sink) are pruned, so the candidate actually gets
  smaller;
* surviving components then get an attribute pass -- drop latencies,
  early-evaluation functions, passivity, extra capacity -- keeping
  each simplification only while the failure persists.

Candidates are probed in sorted-name order and a probe that raises
counts as "does not fail" (same contract as the trace-level shrinker),
so the result is always the last *confirmed-failing* model.  A
thousand-node counterexample typically reduces to a handful of blocks.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.fuzz.generate import SpecRepairError, repair_model
from repro.fuzz.model import ConnModel, InvalidSpecModel, SpecModel

__all__ = ["prune_stubs", "remove_components", "shrink_model"]

#: Does this model still provoke the failure?
Fails = Callable[[SpecModel], bool]


def _safe(fails: Fails) -> Fails:
    def safe(candidate: SpecModel) -> bool:
        try:
            return bool(fails(candidate))
        except Exception:
            return False

    return safe


def remove_components(
    model: SpecModel, names: Sequence[str]
) -> SpecModel:
    """Drop the named blocks/registers, bridging across 1-in/1-out ones.

    In- and out-connections of a removed component are paired up in
    port order and bridged (producer wired straight to consumer);
    unpaired neighbours are left dangling for the repair pass to stub.
    """
    doomed = set(names)
    model = model.clone()
    model.blocks = [b for b in model.blocks if b.name not in doomed]
    model.registers = [r for r in model.registers if r.name not in doomed]
    model.sources = [s for s in model.sources if s.name not in doomed]
    model.sinks = [s for s in model.sinks if s.name not in doomed]

    by_component: dict = {}
    survivors: List[ConnModel] = []
    for conn in model.connections:
        src_gone = conn.src[1] in doomed and conn.src[0] != "source"
        dst_gone = conn.dst[1] in doomed and conn.dst[0] != "sink"
        if conn.src[1] in doomed or conn.dst[1] in doomed:
            if dst_gone:
                by_component.setdefault(conn.dst[1], ([], []))[0].append(conn)
            if src_gone:
                by_component.setdefault(conn.src[1], ([], []))[1].append(conn)
            continue
        survivors.append(conn)
    for name in sorted(by_component):
        ins, outs = by_component[name]
        ins.sort(key=lambda c: c.dst[2])
        outs.sort(key=lambda c: c.src[2])
        for into, out in zip(ins, outs):
            if into.src[1] in doomed or out.dst[1] in doomed:
                continue  # a bridge into another removed component
            survivors.append(ConnModel(into.src, out.dst,
                                       passive=into.passive or out.passive))
    model.connections = survivors
    return model


def prune_stubs(model: SpecModel) -> SpecModel:
    """Drop direct source->sink connections along with both endpoints.

    Such chains carry no information about the failure (the repair pass
    recreates them at will) but inflate the component count; pruning
    them is always validity-preserving.
    """
    model = model.clone()
    while True:
        trivial = [c for c in model.connections
                   if c.src[0] == "source" and c.dst[0] == "sink"]
        if not trivial:
            return model
        conn = trivial[0]
        model.connections.remove(conn)
        model.sources = [s for s in model.sources if s.name != conn.src[1]]
        model.sinks = [s for s in model.sinks if s.name != conn.dst[1]]


def _legalise(model: SpecModel) -> Optional[SpecModel]:
    """Repair + prune a candidate; None when it cannot be made valid."""
    try:
        return prune_stubs(repair_model(model))
    except (SpecRepairError, InvalidSpecModel):
        return None


def _removable(model: SpecModel) -> List[str]:
    return sorted([b.name for b in model.blocks]
                  + [r.name for r in model.registers])


def _ddmin_components(model: SpecModel, fails: Fails) -> SpecModel:
    current = model
    names = _removable(current)
    chunk = max(1, len(names) // 2)
    while chunk >= 1:
        reduced = True
        while reduced:
            reduced = False
            names = _removable(current)
            for i in range(0, len(names), chunk):
                candidate = _legalise(
                    remove_components(current, names[i:i + chunk])
                )
                if candidate is None:
                    continue
                if len(_removable(candidate)) >= len(names):
                    continue  # repair re-grew it; not a reduction
                if fails(candidate):
                    current = candidate
                    reduced = True
                    break
        chunk //= 2
    return current


def _attribute_pass(model: SpecModel, fails: Fails) -> SpecModel:
    """Simplify surviving attributes while the failure persists."""
    current = model

    def try_simpler(mutant: SpecModel) -> bool:
        nonlocal current
        candidate = _legalise(mutant)
        if candidate is not None and fails(candidate):
            current = candidate
            return True
        return False

    for block in sorted(b.name for b in current.blocks):
        mutant = current.clone()
        b = next(x for x in mutant.blocks if x.name == block)
        if b.latency is not None:
            b.latency = None
            try_simpler(mutant)
        mutant = current.clone()
        b = next(x for x in mutant.blocks if x.name == block)
        if b.ee is not None:
            b.ee = None
            try_simpler(mutant)
    for reg in sorted(r.name for r in current.registers):
        mutant = current.clone()
        r = next((x for x in mutant.registers if x.name == reg), None)
        if r is not None and (r.capacity != 2 or r.initial_tokens > 1):
            r.capacity = 2
            r.initial_tokens = min(r.initial_tokens, 1)
            try_simpler(mutant)
    if any(c.passive for c in current.connections):
        mutant = current.clone()
        for c in mutant.connections:
            c.passive = False
        try_simpler(mutant)
    return current


def shrink_model(model: SpecModel, fails: Fails) -> SpecModel:
    """Minimise a failing model (ValueError when it does not fail).

    The ddmin loop probes candidates in sorted component-name order and
    accepts the first failing reduction of each sweep, so the result is
    deterministic for a deterministic predicate.
    """
    if not fails(model):
        raise ValueError("model does not fail; nothing to shrink")
    fails = _safe(fails)
    current = _ddmin_components(model, fails)
    return _attribute_pass(current, fails)
