"""The fuzzing campaign loop behind ``repro fuzz``.

:func:`run_fuzz` generates ``specs`` models from one seed, runs the
full-pipeline oracle on each, shrinks every finding to a minimal model
and (optionally) persists it to a corpus directory.  The report is
byte-deterministic given the seed: no timestamps, sorted keys, and all
randomness keyed on ``f"fuzz:{seed}:{index}"``.  The optional
wall-clock ``budget`` cuts a run short (recorded in the report as
``budget_exhausted``); leave it unset for reproducible output.

:func:`run_demo` is the seeded-bug acceptance demo: generate early-
evaluation-heavy networks, plant the broken early-join arbiter
(:mod:`repro.fuzz.mutations`), let the oracle catch the invariant
violation and shrink the host network down around the one guilty join.
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.fuzz.corpus import CorpusEntry, save_entry
from repro.fuzz.generate import GeneratorConfig, generate_model
from repro.fuzz.model import SpecModel
from repro.fuzz.mutations import MUTATIONS
from repro.fuzz.oracle import FuzzFinding, OracleConfig, run_oracle
from repro.fuzz.shrink import shrink_model

__all__ = ["FuzzConfig", "FuzzReport", "run_demo", "run_fuzz"]


@dataclass(frozen=True)
class FuzzConfig:
    seed: int = 0
    specs: int = 20
    max_blocks: int = 48
    cycles: int = 96
    lanes: int = 8
    #: optional wall-clock cap in seconds (makes output run-dependent)
    budget: Optional[float] = None
    #: optional corpus directory for shrunk counterexamples
    corpus: Optional[str] = None
    #: optional seeded-bug mutation name (see repro.fuzz.mutations)
    mutation: Optional[str] = None
    shrink: bool = True
    check_gates: bool = True
    check_compiled: bool = True
    check_verify: bool = True
    generator: Optional[GeneratorConfig] = None
    cache: object = None


@dataclass
class FuzzReport:
    seed: int
    specs: int
    examined: int = 0
    findings: List[CorpusEntry] = field(default_factory=list)
    budget_exhausted: bool = False

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "specs": self.specs,
            "examined": self.examined,
            "budget_exhausted": self.budget_exhausted,
            "findings": [e.to_dict() for e in self.findings],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    def render(self) -> str:
        lines = [
            f"fuzz seed={self.seed}: examined {self.examined}/{self.specs} "
            f"spec(s), {len(self.findings)} finding(s)"
            + (" [budget exhausted]" if self.budget_exhausted else "")
        ]
        for entry in self.findings:
            lines.append(
                f"  {entry.name}: [{entry.finding['stage']}] "
                f"{entry.finding['detail']}"
            )
            lines.append(
                f"    shrunk {entry.to_dict()['blocks_before']} -> "
                f"{entry.to_dict()['blocks_after']} block(s)"
            )
        return "\n".join(lines)


def _oracle_config(config: FuzzConfig, fast: bool = False) -> OracleConfig:
    return OracleConfig(
        cycles=config.cycles,
        lanes=config.lanes,
        check_gates=config.check_gates and not fast,
        check_compiled=config.check_compiled,
        check_verify=config.check_verify and not fast,
        cache=config.cache,
    )


def shrink_predicate(
    config: FuzzConfig, stage: str, mutate=None
) -> Callable[[SpecModel], bool]:
    """Does a candidate still provoke a finding in the same stage?

    Shrink probes use the fast oracle (behavioural stages only) when
    the original finding was behavioural -- probing thousands of
    candidates through the gate backends would dominate the campaign.
    """
    fast = stage in ("build", "lint", "network-lint", "behavioral")
    ocfg = _oracle_config(config, fast=fast)

    def fails(candidate: SpecModel) -> bool:
        finding = run_oracle(candidate, seed=config.seed, config=ocfg,
                             mutate=mutate)
        return finding is not None and finding.stage == stage

    return fails


def _rules_hit(model: SpecModel) -> List[str]:
    """Sorted lint rule ids firing on the unmutated original spec.

    Cross-references every counterexample with the static analyzer:
    a dynamic finding on a model the linter already flags is usually
    the linter's defect class manifesting.  Unbuildable models (the
    ``build`` oracle stage) hit no rules.
    """
    from repro.lint.elastic_rules import lint_spec

    try:
        spec = model.build()
    except Exception:
        return []
    return sorted({f.rule for f in lint_spec(spec)})


def _make_entry(
    config: FuzzConfig,
    model: SpecModel,
    finding: FuzzFinding,
    mutate,
) -> CorpusEntry:
    shrunk = model
    if config.shrink:
        try:
            shrunk = shrink_model(
                model, shrink_predicate(config, finding.stage, mutate)
            )
        except ValueError:
            shrunk = model  # not reproducible under the fast oracle
    return CorpusEntry(
        name=model.name,
        seed=config.seed,
        finding=finding.to_dict(),
        model=model.to_dict(),
        shrunk=shrunk.to_dict(),
        mutation=config.mutation,
        rules_hit=_rules_hit(model),
    )


def run_fuzz(
    config: FuzzConfig = FuzzConfig(),
    progress: Optional[Callable[[int, int], None]] = None,
) -> FuzzReport:
    """Run one fuzzing campaign (see module docstring)."""
    if config.mutation is not None and config.mutation not in MUTATIONS:
        raise ValueError(
            f"unknown mutation {config.mutation!r}; "
            f"pick from {sorted(MUTATIONS)}"
        )
    mutate = MUTATIONS[config.mutation] if config.mutation else None
    generator = config.generator or GeneratorConfig(
        max_blocks=config.max_blocks
    )
    ocfg = _oracle_config(config)
    report = FuzzReport(seed=config.seed, specs=config.specs)
    deadline = (time.monotonic() + config.budget
                if config.budget is not None else None)
    for index in range(config.specs):
        if deadline is not None and time.monotonic() > deadline:
            report.budget_exhausted = True
            break
        rng = random.Random(f"fuzz:{config.seed}:{index}")
        model = generate_model(rng, generator,
                               name=f"fuzz{config.seed}_{index:04d}")
        finding = run_oracle(model, seed=config.seed, config=ocfg,
                             mutate=mutate)
        report.examined += 1
        if finding is not None:
            entry = _make_entry(config, model, finding, mutate)
            report.findings.append(entry)
            if config.corpus is not None:
                save_entry(entry, config.corpus)
        if progress is not None:
            progress(report.examined, len(report.findings))
    return report


def run_demo(
    seed: int = 0,
    max_trials: int = 40,
    config: Optional[FuzzConfig] = None,
) -> CorpusEntry:
    """The broken-early-join acceptance demo (see module docstring).

    Generates EE-dense models until the planted arbiter bug fires,
    then shrinks the counterexample.  Deterministic given ``seed``.
    """
    config = config or FuzzConfig(
        seed=seed, mutation="broken-early-join", check_gates=False,
        check_verify=False, cycles=64,
    )
    generator = GeneratorConfig(
        max_blocks=24, min_blocks=6, p_join=0.9, p_early=1.0,
        p_fork=0.2, p_vl=0.0, p_kill_sink=0.0,
        source_p_valid=(0.5, 0.75),
    )
    mutate = MUTATIONS["broken-early-join"]
    ocfg = _oracle_config(config)
    for trial in range(max_trials):
        rng = random.Random(f"fuzz-demo:{seed}:{trial}")
        model = generate_model(rng, generator,
                               name=f"demo{seed}_{trial:03d}")
        finding = run_oracle(model, seed=seed, config=ocfg, mutate=mutate)
        if finding is not None and finding.stage == "behavioral":
            return _make_entry(config, model, finding, mutate)
    raise RuntimeError(
        f"demo bug did not fire in {max_trials} trials (seed {seed})"
    )
