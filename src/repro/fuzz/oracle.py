"""The full-pipeline differential oracle: one spec, every backend.

:func:`run_oracle` pushes a generated :class:`~repro.fuzz.model.
SpecModel` through the complete toolchain and reports the *first*
discrepancy as a :class:`FuzzFinding`:

1. **build** -- the model must materialise (typed
   :class:`~repro.fuzz.model.InvalidSpecModel` otherwise);
2. **lint** -- the spec-level rules must report no ERROR (the
   generator's clean-by-construction contract);
3. **behavioral** -- the cycle-accurate network runs under its raising
   SELF protocol monitors (invariant (2), Retry persistence, payload
   checks, fixed-point convergence), after an optional ``mutate`` hook
   -- the seeded-bug demo patches a controller here;
4. **differential** -- the gate-level netlist (with ND environment
   stubs, whose free inputs are protocol-legal for *any* 0/1 stream)
   runs lock-step on the scalar two-phase simulator, the bit-parallel
   batch kernel and the compiled backend under randomized per-lane
   schedules; every channel wire must agree on every lane every cycle,
   and the non-raising SELF monitors of :mod:`repro.faults.monitors`
   watch the scalar trace (**protocol** stage);
5. **ctl** -- below an input/state budget, the Kripke structure is
   built and the paper's safety properties (invariant, Retry+/Retry−)
   are model checked; a :class:`~repro.verif.kripke.
   StateSpaceLimitError` is a skip, not a finding.

Stages 4-5 are skipped when a register capacity is not 2 (the one
configuration the gate backend cannot emit).  All randomness derives
from ``random.Random(f"fuzz:{seed}:...")`` streams, so a finding is
replayable from ``(model, seed)`` alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.fuzz.model import InvalidSpecModel, SpecModel

__all__ = ["FuzzFinding", "OracleConfig", "run_oracle"]

#: A behavioural-network mutation hook (the seeded-bug demo).
Mutation = Callable[[object], object]


@dataclass(frozen=True)
class FuzzFinding:
    """One oracle discrepancy: which stage broke, and how."""

    spec: str
    seed: int
    stage: str
    detail: str

    def to_dict(self) -> Dict[str, object]:
        return {"spec": self.spec, "seed": self.seed, "stage": self.stage,
                "detail": self.detail}

    def __str__(self) -> str:
        return f"{self.spec} [{self.stage}] {self.detail}"


@dataclass(frozen=True)
class OracleConfig:
    """Budgets for one oracle run."""

    cycles: int = 96
    lanes: int = 8
    #: run the gate-level scalar/batch/compiled differential stage
    check_gates: bool = True
    #: include the compiled backend in the differential comparison
    check_compiled: bool = True
    #: run the bounded Kripke/CTL spot check
    check_verify: bool = True
    #: skip CTL when the netlist has more free inputs than this (the
    #: exploration enumerates 2^k input combinations per state)
    verify_max_inputs: int = 6
    verify_max_states: int = 20_000
    #: optional BuildCache for compiled modules and Kripke structures
    cache: object = None


def _finding(model: SpecModel, seed: int, stage: str,
             detail: str) -> FuzzFinding:
    return FuzzFinding(spec=model.name, seed=seed, stage=stage,
                       detail=detail)


def run_oracle(
    model: SpecModel,
    seed: int = 0,
    config: OracleConfig = OracleConfig(),
    mutate: Optional[Mutation] = None,
) -> Optional[FuzzFinding]:
    """Run the whole pipeline on ``model``; None means all stages agree."""
    from repro.elastic.protocol import ProtocolViolation
    from repro.lint.elastic_rules import lint_network, lint_spec

    # Stage 1: build.
    try:
        spec = model.build()
    except InvalidSpecModel as exc:
        return _finding(model, seed, "build", str(exc))

    # Stage 2: the clean-by-construction lint contract.
    errors = [f for f in lint_spec(spec) if f.severity.name == "ERROR"]
    if errors:
        return _finding(model, seed, "lint",
                        "; ".join(str(f) for f in errors))

    # Stage 3: behavioural run under raising protocol monitors.
    from repro.synthesis.elaborate import to_behavioral

    net = to_behavioral(spec, seed=seed, monitor=True, check_data=True)
    if mutate is not None:
        mutate(net)
    net_errors = [f for f in lint_network(net)
                  if f.severity.name == "ERROR"]
    if net_errors:
        return _finding(model, seed, "network-lint",
                        "; ".join(str(f) for f in net_errors))
    try:
        for _ in range(config.cycles):
            net.step()
    except ProtocolViolation as exc:
        return _finding(model, seed, "behavioral", str(exc))

    if not config.check_gates or any(
        r.capacity != 2 for r in spec.registers.values()
    ):
        return None

    # Stage 4: scalar vs batch vs compiled on the gate netlist.
    finding = _gate_differential(model, spec, seed, config)
    if finding is not None:
        return finding

    # Stage 5: bounded Kripke/CTL spot check.
    if config.check_verify:
        return _ctl_spot_check(model, spec, seed, config)
    return None


def _gate_differential(
    model: SpecModel, spec, seed: int, config: OracleConfig
) -> Optional[FuzzFinding]:
    from repro.faults.monitors import channel_monitors
    from repro.lint.netlist_rules import lint_netlist
    from repro.rtl.batchsim import BatchSimulator, pack_stimulus
    from repro.rtl.simulator import TwoPhaseSimulator
    from repro.synthesis.elaborate import to_gates

    elab = to_gates(spec, include_env=True, as_latches=False)
    nl = elab.netlist
    nl_errors = [f for f in lint_netlist(nl) if f.severity.name == "ERROR"]
    if nl_errors:
        return _finding(model, seed, "netlist-lint",
                        "; ".join(str(f) for f in nl_errors))

    channels = [elab.channels[k] for k in sorted(elab.channels)]
    wires = [w for ch in channels for w in ch.wires()]
    inputs = sorted(nl.inputs)
    lanes = config.lanes
    stimuli = []
    for lane in range(lanes):
        rng = random.Random(f"fuzz:{seed}:{model.name}:env:{lane}")
        stimuli.append([
            {name: rng.getrandbits(1) for name in inputs}
            for _ in range(config.cycles)
        ])

    scalar = TwoPhaseSimulator(nl)
    batch = BatchSimulator(nl, lanes=lanes)
    compiled = None
    if config.check_compiled:
        from repro.codegen.sim import CompiledSimulator

        compiled = CompiledSimulator(
            nl, lanes, hooks=frozenset(), observe=frozenset(wires),
            cache=config.cache,
        )
    monitors = channel_monitors(channels)

    for t, packed in enumerate(pack_stimulus(stimuli)):
        batch.cycle(packed)
        if compiled is not None:
            compiled.cycle(packed)
        values = scalar.cycle(stimuli[0][t])
        for wire in wires:
            want = values.get(wire)
            got = batch.lane_value(wire, 0)
            if got != want:
                return _finding(
                    model, seed, "differential",
                    f"cycle {t} wire {wire}: scalar={want!r} "
                    f"batch[0]={got!r}",
                )
            if compiled is not None:
                for lane in range(lanes):
                    c = compiled.lane_value(wire, lane)
                    if c != batch.lane_value(wire, lane):
                        return _finding(
                            model, seed, "differential",
                            f"cycle {t} wire {wire} lane {lane}: "
                            f"batch={batch.lane_value(wire, lane)!r} "
                            f"compiled={c!r}",
                        )
        for monitor in monitors:
            violation = monitor.observe(t, values)
            if violation is not None:
                return _finding(model, seed, "protocol", str(violation))
    return None


def _ctl_spot_check(
    model: SpecModel, spec, seed: int, config: OracleConfig
) -> Optional[FuzzFinding]:
    from repro.synthesis.elaborate import to_gates
    from repro.verif.kripke import StateSpaceLimitError
    from repro.verif.properties import verify_netlist

    elab = to_gates(spec, include_env=True, as_latches=False)
    if len(elab.netlist.inputs) > config.verify_max_inputs:
        return None
    channels = [elab.channels[k] for k in sorted(elab.channels)]
    try:
        result = verify_netlist(
            elab.netlist, channels, include_liveness=False,
            max_states=config.verify_max_states, cache=config.cache,
        )
    except StateSpaceLimitError:
        return None  # over budget: a skip, not a finding
    if not result.ok:
        return _finding(
            model, seed, "ctl",
            "failed CTL properties: "
            + ", ".join(f"{ch}.{prop}" for ch, prop in result.failures()),
        )
    return None
