"""Seeded generation of random *valid* elastic system models.

:func:`generate_model` grows a :class:`~repro.fuzz.model.SpecModel` of
up to thousands of controllers from one ``random.Random``: a forward
DAG of joins/forks/pipes/VL units fed by sources, with registers
sprinkled on edges, early-evaluation joins at a configurable density,
passive interfaces, and loops closed through token-holding registers.

:func:`repair_model` is the validity pass that makes "valid by
construction" a checkable contract: it completes dangling ports with
fresh sources/sinks, clamps out-of-range attributes, and then iterates
the spec-level lint rules (:func:`repro.lint.elastic_rules.lint_spec`),
fixing every deadlock ERROR it reports -- a token into an ELX004
cycle, spare capacity into an ELX005 loop, an annihilating register
into an ELX006 counterflow cycle -- until the model lints clean.  The
same pass re-legalises the mutilated candidates that spec-level
shrinking produces, which is what lets ddmin remove whole blocks
without tracking connectivity itself.  A model the pass cannot fix
raises the typed :class:`SpecRepairError`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.fuzz.model import (
    BlockModel,
    ConnModel,
    EndpointModel,
    InvalidSpecModel,
    RegisterModel,
    SinkModel,
    SourceModel,
    SpecModel,
)

__all__ = ["GeneratorConfig", "SpecRepairError", "generate_model",
           "repair_model"]


class SpecRepairError(ValueError):
    """The repair pass could not produce a lint-clean model."""


@dataclass(frozen=True)
class GeneratorConfig:
    """Densities and bounds for :func:`generate_model`."""

    max_blocks: int = 48
    min_blocks: int = 1
    #: probability a new block is a join (2..max_fanin inputs)
    p_join: float = 0.35
    #: probability a new block is a fork (2..max_fanout outputs)
    p_fork: float = 0.25
    #: probability a join evaluates early (k-of-n threshold EE)
    p_early: float = 0.4
    #: probability a 1-in/1-out block is a variable-latency unit
    p_vl: float = 0.15
    #: probability a block output goes through a fresh register
    p_register: float = 0.35
    #: probability a join defers one input to a feedback loop
    p_loop: float = 0.12
    #: probability a connection gets a passive anti-token interface
    p_passive: float = 0.08
    #: probability a non-feedback register gets a non-gate capacity
    p_odd_capacity: float = 0.0
    max_fanin: int = 3
    max_fanout: int = 3
    source_p_valid: Sequence[float] = (0.5, 0.75, 1.0)
    sink_p_stop: Sequence[float] = (0.0, 0.25, 0.5)
    #: probability a sink is a killing consumer (Fig. 8(b) set-up)
    p_kill_sink: float = 0.2
    sink_p_kill: float = 0.25


def _src_out(name: str) -> EndpointModel:
    return ("source", name, "out")


def _sink_in(name: str) -> EndpointModel:
    return ("sink", name, "in")


def _blk_in(name: str, port: int) -> EndpointModel:
    return ("block", name, f"in{port}")


def _blk_out(name: str, port: int) -> EndpointModel:
    return ("block", name, f"out{port}")


def _reg_in(name: str) -> EndpointModel:
    return ("register", name, "in")


def _reg_out(name: str) -> EndpointModel:
    return ("register", name, "out")


def generate_model(
    rng: random.Random,
    config: GeneratorConfig = GeneratorConfig(),
    name: str = "fuzz",
) -> SpecModel:
    """Grow one random valid model; deterministic given ``rng``'s state.

    The result is passed through :func:`repair_model`, so it elaborates
    and lints clean by construction.
    """
    model = SpecModel(name)
    counters = {"b": 0, "r": 0, "src": 0, "snk": 0}

    def fresh(kind: str) -> str:
        counters[kind] += 1
        return f"{kind}{counters[kind] - 1}"

    def new_source() -> EndpointModel:
        src = SourceModel(fresh("src"),
                          p_valid=rng.choice(list(config.source_p_valid)))
        model.sources.append(src)
        return _src_out(src.name)

    open_outputs: List[EndpointModel] = [new_source()]
    deferred_loops: List[EndpointModel] = []  # join inputs fed later

    def take_output() -> EndpointModel:
        if open_outputs and rng.random() < 0.8:
            return open_outputs.pop(rng.randrange(len(open_outputs)))
        return new_source()

    n_blocks = rng.randint(min(config.min_blocks, config.max_blocks),
                           config.max_blocks)
    for _ in range(n_blocks):
        n_in = (rng.randint(2, config.max_fanin)
                if rng.random() < config.p_join else 1)
        n_out = (rng.randint(2, config.max_fanout)
                 if rng.random() < config.p_fork else 1)
        ee = latency = None
        if n_in > 1 and rng.random() < config.p_early:
            ee = f"thr:{rng.randint(1, n_in)}"
        elif n_in == 1 and n_out == 1 and rng.random() < config.p_vl:
            latency = f"uniform:1:{rng.randint(1, 4)}"
        block = BlockModel(fresh("b"), n_inputs=n_in, n_outputs=n_out,
                           ee=ee, latency=latency)
        model.blocks.append(block)
        for port in range(n_in):
            if n_in > 1 and port > 0 and rng.random() < config.p_loop:
                deferred_loops.append(_blk_in(block.name, port))
                continue
            model.connections.append(
                ConnModel(take_output(), _blk_in(block.name, port))
            )
        for port in range(n_out):
            out = _blk_out(block.name, port)
            if rng.random() < config.p_register:
                cap, tokens = 2, rng.choice([0, 1])
                if rng.random() < config.p_odd_capacity:
                    cap = rng.choice([1, 3])
                    tokens = min(tokens, cap)
                reg = RegisterModel(fresh("r"), capacity=cap,
                                    initial_tokens=tokens)
                model.registers.append(reg)
                model.connections.append(ConnModel(out, _reg_in(reg.name)))
                out = _reg_out(reg.name)
            open_outputs.append(out)

    # Close deferred loop inputs through a token+bubble register (one
    # initial token, capacity 2): any cycle through such a register has
    # both a token to move and a bubble to move into, and its buffer
    # annihilates counterflow -- lint-clean whichever edge it lands on.
    for endpoint in deferred_loops:
        reg = RegisterModel(fresh("r"), capacity=2, initial_tokens=1)
        model.registers.append(reg)
        model.connections.append(ConnModel(take_output(), _reg_in(reg.name)))
        model.connections.append(ConnModel(_reg_out(reg.name), endpoint))

    for out in open_outputs:
        sink = SinkModel(fresh("snk"),
                         p_stop=rng.choice(list(config.sink_p_stop)))
        if rng.random() < config.p_kill_sink:
            sink.p_kill = config.sink_p_kill
        model.sinks.append(sink)
        model.connections.append(ConnModel(out, _sink_in(sink.name)))

    if any(b.ee is not None for b in model.blocks):
        for conn in model.connections:
            if rng.random() < config.p_passive:
                conn.passive = True

    return repair_model(model)


# ----------------------------------------------------------------------
# Validity repair
# ----------------------------------------------------------------------
def _fresh_name(taken: Set[str], prefix: str) -> str:
    i = 0
    while f"{prefix}{i}" in taken:
        i += 1
    taken.add(f"{prefix}{i}")
    return f"{prefix}{i}"


def _expected_ports(model: SpecModel) -> Dict[EndpointModel, str]:
    ports: Dict[EndpointModel, str] = {}
    for s in model.sources:
        ports[_src_out(s.name)] = "src"
    for s in model.sinks:
        ports[_sink_in(s.name)] = "dst"
    for b in model.blocks:
        for i in range(b.n_inputs):
            ports[_blk_in(b.name, i)] = "dst"
        for i in range(b.n_outputs):
            ports[_blk_out(b.name, i)] = "src"
    for r in model.registers:
        ports[_reg_in(r.name)] = "dst"
        ports[_reg_out(r.name)] = "src"
    return ports


def _structural_repair(model: SpecModel) -> None:
    """Port-completeness and attribute clamping (in place)."""
    # Deduplicate component names (first declaration wins).
    for items in (model.sources, model.sinks, model.blocks, model.registers):
        seen: Set[str] = set()
        items[:] = [x for x in items
                    if x.name not in seen and not seen.add(x.name)]
    # Clamp attributes into their palettes.
    for b in model.blocks:
        b.n_inputs = max(1, b.n_inputs)
        b.n_outputs = max(1, b.n_outputs)
        if b.ee is not None:
            if b.n_inputs < 2:
                b.ee = None
            else:
                _, _, arg = b.ee.partition(":")
                try:
                    k = int(arg)
                except ValueError:
                    k = b.n_inputs
                b.ee = f"thr:{min(max(k, 1), b.n_inputs)}"
        if b.latency is not None and (b.n_inputs != 1 or b.n_outputs != 1):
            b.latency = None
        if b.latency is not None and b.ee is not None:
            b.ee = None
    for r in model.registers:
        r.capacity = max(1, r.capacity)
        r.initial_tokens = min(max(0, r.initial_tokens), r.capacity)
    # Keep each port's first connection; drop unknown/duplicate uses.
    ports = _expected_ports(model)
    used: Set[EndpointModel] = set()
    kept: List[ConnModel] = []
    for conn in model.connections:
        src, dst = tuple(conn.src), tuple(conn.dst)
        if ports.get(src) != "src" or ports.get(dst) != "dst":
            continue
        if src in used or dst in used:
            continue
        used.update((src, dst))
        conn.src, conn.dst = src, dst
        kept.append(conn)
    model.connections = kept
    # Stub every dangling port with a fresh source or sink.
    taken = set(model.component_names())
    for port in sorted(p for p in ports if p not in used):
        if ports[port] == "dst":
            src = SourceModel(_fresh_name(taken, "src"))
            model.sources.append(src)
            model.connections.append(ConnModel(_src_out(src.name), port))
        else:
            sink = SinkModel(_fresh_name(taken, "snk"))
            model.sinks.append(sink)
            model.connections.append(ConnModel(port, _sink_in(sink.name)))


def _arc_index(model: SpecModel, path: Sequence[str]) -> Optional[int]:
    """Index of a connection joining two consecutive path components."""
    arcs = set(zip(path, tuple(path[1:]) + (path[0],)))
    for i, conn in enumerate(model.connections):
        if (conn.src[1], conn.dst[1]) in arcs:
            return i
    return None


def _insert_register(model: SpecModel, conn_index: int) -> None:
    """Split one connection through a fresh token+bubble register."""
    taken = set(model.component_names())
    reg = RegisterModel(_fresh_name(taken, "r"), capacity=2,
                        initial_tokens=1)
    model.registers.append(reg)
    conn = model.connections[conn_index]
    model.connections[conn_index] = ConnModel(
        conn.src, _reg_in(reg.name), passive=conn.passive
    )
    model.connections.append(ConnModel(_reg_out(reg.name), conn.dst))


def _fix_deadlock(model: SpecModel, finding) -> bool:
    """Apply one lint-driven fix; True when the model changed."""
    path = tuple(finding.path)
    registers = {r.name: r for r in model.registers}
    on_path = [registers[n] for n in path if n in registers]
    if finding.rule == "ELX004" and on_path:
        # A token-free cycle through existing registers: seed a token
        # (and ensure a bubble stays available).
        reg = on_path[0]
        reg.initial_tokens = max(reg.initial_tokens, 1)
        reg.capacity = max(reg.capacity, 2)
        return True
    if finding.rule == "ELX005" and on_path:
        # Bubble-free loop: free one slot on a register of the cycle.
        reg = on_path[0]
        reg.capacity = max(reg.capacity, 2)
        reg.initial_tokens = min(reg.initial_tokens, reg.capacity - 1, 1)
        reg.initial_tokens = max(reg.initial_tokens, 1)
        return True
    # ELX006 (and register-free ELX004 cycles): break an arc of the
    # cycle with a fresh annihilating token+bubble register.
    index = _arc_index(model, path)
    if index is None:
        return False
    _insert_register(model, index)
    return True


def repair_model(model: SpecModel, max_rounds: int = 12) -> SpecModel:
    """Return a lint-clean copy of ``model`` (see module docstring).

    Raises :class:`SpecRepairError` when the lint loop fails to
    converge, and :class:`~repro.fuzz.model.InvalidSpecModel` when the
    model is structurally beyond repair (e.g. empty).
    """
    from repro.lint.elastic_rules import lint_spec

    model = model.clone()
    _structural_repair(model)
    errors: List = []
    for _ in range(max_rounds):
        spec = model.build()  # raises InvalidSpecModel on empty/bad models
        errors = [f for f in lint_spec(spec)
                  if f.severity.name == "ERROR"]
        if not errors:
            return model
        progressed = False
        for finding in errors:
            progressed |= _fix_deadlock(model, finding)
        if not progressed:
            break
        _structural_repair(model)
    raise SpecRepairError(
        f"{model.name}: repair did not converge after {max_rounds} rounds "
        f"({len(errors)} lint error(s) remain: "
        f"{'; '.join(str(f) for f in errors[:3])})"
    )
