"""Spec-level fuzzing: generator, differential oracle, shrinking, corpus.

The fuzzer closes the loop the rest of the repo leaves open: every
backend (behavioural, gate-level scalar, bit-parallel batch, compiled,
CTL model checking) implements the same SELF elastic semantics, so any
*valid* system spec is a free differential test case.  This package

* grows random valid :class:`~repro.fuzz.model.SpecModel`s
  (:mod:`repro.fuzz.generate`), lint-clean by construction via a
  repair pass;
* cross-checks every backend per spec (:mod:`repro.fuzz.oracle`);
* shrinks findings at the *spec* level -- removing blocks and
  re-repairing -- rather than at the trace level
  (:mod:`repro.fuzz.shrink`);
* persists shrunk counterexamples as a replayable JSON corpus
  (:mod:`repro.fuzz.corpus`);
* ships seeded bugs the oracle must catch
  (:mod:`repro.fuzz.mutations`).

Drive it with ``repro fuzz --seed 7 --specs 100`` or programmatically
via :func:`~repro.fuzz.runner.run_fuzz`.
"""

from repro.fuzz.corpus import (CORPUS_SCHEMA, CorpusEntry, load_corpus,
                               replay_entry, save_entry)
from repro.fuzz.generate import (GeneratorConfig, SpecRepairError,
                                 generate_model, repair_model)
from repro.fuzz.model import (BlockModel, ConnModel, InvalidSpecModel,
                              RegisterModel, SinkModel, SourceModel,
                              SpecModel)
from repro.fuzz.mutations import MUTATIONS, break_early_join
from repro.fuzz.oracle import FuzzFinding, OracleConfig, run_oracle
from repro.fuzz.runner import FuzzConfig, FuzzReport, run_demo, run_fuzz
from repro.fuzz.shrink import shrink_model

__all__ = [
    "BlockModel",
    "CORPUS_SCHEMA",
    "ConnModel",
    "CorpusEntry",
    "FuzzConfig",
    "FuzzFinding",
    "FuzzReport",
    "GeneratorConfig",
    "InvalidSpecModel",
    "MUTATIONS",
    "OracleConfig",
    "RegisterModel",
    "SinkModel",
    "SourceModel",
    "SpecModel",
    "SpecRepairError",
    "break_early_join",
    "generate_model",
    "load_corpus",
    "repair_model",
    "replay_entry",
    "run_demo",
    "run_fuzz",
    "run_oracle",
    "save_entry",
    "shrink_model",
]
