"""Deliberately broken controllers: seeded bugs the oracle must catch.

Each mutation patches an elaborated behavioural network in place and
returns how many controllers it broke.  Mutations are registered by
name in :data:`MUTATIONS` so corpus entries can record which bug they
reproduce and replay it later.

:func:`break_early_join` plants the classic early-join arbiter bug:
the I gate of Fig. 6(c) drives ``S+ = not fire and not V-`` on every
input channel -- the ``not V-`` term is exactly what keeps invariant
(2) (``never V- and S+``) when a pending anti-token waits on an input.
The broken arbiter drops that term, so the first early firing with a
missing operand leaves an anti-token whose ``V-`` collides with the
(now unconditional) stall -- which the channel's raising
:class:`~repro.elastic.protocol.ProtocolMonitor` reports the next
cycle.  The oracle flags it in the **behavioral** stage, and spec-level
shrinking reduces any large host network to essentially the one early
join plus its environment.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.elastic.behavioral import _NO_HELD_DATA, EarlyJoin, ElasticNetwork
from repro.rtl.logic import land, lnot, lor

__all__ = ["MUTATIONS", "BrokenEarlyJoin", "break_early_join"]


class BrokenEarlyJoin(EarlyJoin):
    """An early join whose I gate forgets the pending-anti-token guard."""

    def evaluate(self) -> bool:
        changed = False
        out = self.output
        full = 1 if any(c >= self.anti_capacity for c in self.apend) else 0

        valids, datas = self._ee_inputs()
        ee_val = self.ee.evaluate(valids, datas)
        vp_out = land(ee_val, lnot(full))
        changed |= out.drive_vp(vp_out)
        if vp_out == 1:
            if self._held_data is not _NO_HELD_DATA:
                out.put_data(self._held_data)
            else:
                out.put_data(self.ee.output_data(valids, datas))
        changed |= out.drive_sn(full)

        fire = land(vp_out, lnot(out.sp))
        forked = land(out.vn, lnot(vp_out), lnot(full))
        for i, ch in enumerate(self.inputs):
            generated = land(fire, lnot(valids[i]))
            vn_i = lor(1 if self.apend[i] > 0 else 0, generated, forked)
            changed |= ch.drive_vn(vn_i)
            # BUG: the correct I gate is ``not fire and not vn_i``; the
            # missing guard asserts S+ while V- is pending.
            changed |= ch.drive_sp(lnot(fire))
        return changed


def break_early_join(net: ElasticNetwork) -> int:
    """Swap every :class:`EarlyJoin` for the broken arbiter variant."""
    broken = 0
    for ctrl in net.controllers:
        if type(ctrl) is EarlyJoin:
            ctrl.__class__ = BrokenEarlyJoin
            broken += 1
    return broken


#: Registered mutations, by the name corpus entries record.
MUTATIONS: Dict[str, Callable[[ElasticNetwork], int]] = {
    "broken-early-join": break_early_join,
}
