"""Replayable JSON corpus of shrunk fuzz counterexamples.

Every finding the fuzzer keeps is persisted as one self-contained JSON
file: the original model, the shrunk minimal model, the finding, the
seed, and (for seeded-bug demos) the mutation name.  Files are written
byte-deterministically (sorted keys, fixed indentation), so a corpus
directory produced by ``repro fuzz --seed S`` is identical across
runs, and :func:`replay_entry` re-runs the oracle on the shrunk model
to confirm a historical counterexample still reproduces.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.fuzz.model import SpecModel
from repro.fuzz.mutations import MUTATIONS
from repro.fuzz.oracle import FuzzFinding, OracleConfig, run_oracle

__all__ = ["CORPUS_SCHEMA", "CorpusEntry", "load_corpus", "replay_entry",
           "save_entry"]

CORPUS_SCHEMA = 1


@dataclass
class CorpusEntry:
    """One shrunk counterexample, ready to replay."""

    name: str
    seed: int
    finding: Dict[str, object]
    model: Dict[str, object]
    shrunk: Dict[str, object]
    mutation: Optional[str] = None
    #: sorted lint rule ids firing on the (unmutated) original spec --
    #: cross-references each counterexample with the static analyzer
    rules_hit: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": CORPUS_SCHEMA,
            "name": self.name,
            "seed": self.seed,
            "mutation": self.mutation,
            "finding": self.finding,
            "model": self.model,
            "shrunk": self.shrunk,
            "rules_hit": sorted(self.rules_hit),
            "blocks_before": len(self.model.get("blocks", ())),
            "blocks_after": len(self.shrunk.get("blocks", ())),
        }

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "CorpusEntry":
        return CorpusEntry(
            name=str(data["name"]),
            seed=int(data["seed"]),
            finding=dict(data["finding"]),
            model=dict(data["model"]),
            shrunk=dict(data["shrunk"]),
            mutation=data.get("mutation"),
            rules_hit=[str(r) for r in data.get("rules_hit", [])],
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"


def save_entry(entry: CorpusEntry, directory) -> Path:
    """Write one entry as ``<dir>/<name>.json`` (deterministic bytes)."""
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    target = path / f"{entry.name}.json"
    target.write_text(entry.to_json())
    return target


def load_corpus(directory) -> List[CorpusEntry]:
    """Every entry of a corpus directory, sorted by name."""
    path = Path(directory)
    entries = []
    for file in sorted(path.glob("*.json")):
        data = json.loads(file.read_text())
        entries.append(CorpusEntry.from_dict(data))
    return entries


def replay_entry(
    entry: CorpusEntry, config: OracleConfig = OracleConfig()
) -> Optional[FuzzFinding]:
    """Re-run the oracle on the entry's shrunk model (None = no repro)."""
    model = SpecModel.from_dict(entry.shrunk)
    mutate = MUTATIONS[entry.mutation] if entry.mutation else None
    return run_oracle(model, seed=entry.seed, config=config, mutate=mutate)
