"""repro -- Synchronous elastic circuits with early evaluation and token counterflow.

A complete reproduction of Cortadella & Kishinevsky, DAC 2007:

* :mod:`repro.core` -- dual marked graphs (the behavioural model).
* :mod:`repro.rtl` -- gate/latch/flip-flop netlist kernel.
* :mod:`repro.elastic` -- SELF protocol controllers, behavioural and
  gate-level, with anti-token counterflow and early evaluation.
* :mod:`repro.synthesis` -- the elasticization flow.
* :mod:`repro.verif` -- CTL model checking of the controllers.
* :mod:`repro.casestudy` -- the Fig. 9 example and Table 1 experiments.
"""

__version__ = "1.0.0"
